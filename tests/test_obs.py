"""Tests for ``repro.obs``: tracing, metrics, and their propagation.

The cross-process tests are the point: a spawn-lane parallel worker and
a daemon fleet worker must emit spans that parent back to the client's
root span *through* the pickle/wire boundaries, into the one shared
JSONL sink.  Merging of metrics snapshots must be associative, because
the scheduler merges latest-per-worker snapshots in whatever order
results arrive.
"""

import json
import os
import random

import pytest

from repro.engine.spec import SpannerSpec
from repro.obs.metrics import (
    TIME_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    set_registry,
)
from repro.obs.trace import (
    NOOP_SPAN,
    TraceContext,
    Tracer,
    descendants,
    read_trace,
    set_tracer,
)
from repro.parallel import parallel_many
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import ServiceThread
from repro.session import SessionConfig, connect
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp


@pytest.fixture(autouse=True)
def fresh_registry():
    """Isolate the process-global registry: ``ServiceThread`` daemons run
    in this very process, so counters would leak across tests."""
    set_registry(MetricsRegistry())
    yield
    set_registry(None)


# -- tracer basics ------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_returns_the_shared_noop(self):
        tracer = Tracer(None)
        handle = tracer.span("anything")
        assert handle is NOOP_SPAN
        with handle as span:
            assert span.context() is None
        assert not tracer.enabled

    def test_spans_nest_on_the_thread_and_export_jsonl(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sink)
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        records = read_trace(sink)
        by_name = {r["name"]: r for r in records}
        assert set(by_name) == {"outer", "inner"}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner["parent"] == outer["span"]
        assert inner["trace"] == outer["trace"]
        assert outer["parent"] is None
        assert outer["start"] <= inner["start"] <= inner["end"] <= outer["end"]
        assert outer["tags"] == {"kind": "test"}

    def test_context_round_trips_over_the_wire_encoding(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sink)
        span = tracer.begin("root")
        ctx = span.context()
        assert ctx.path == sink
        decoded = TraceContext.from_wire(ctx.to_wire())
        assert decoded == ctx
        span.finish()
        # tolerant decoding: garbage is None, never an exception
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({"id": 3}) is None
        assert TraceContext.from_wire("nope") is None

    def test_explicit_parent_wins_and_carries_the_sink(self, tmp_path):
        sink = str(tmp_path / "remote.jsonl")
        parent = TraceContext(trace_id="t" * 16, span_id="s" * 16, path=sink)
        tracer = Tracer(None)  # no local sink: only the parent's applies
        child = tracer.begin("child", parent=parent)
        child.finish()
        [record] = read_trace(sink)
        assert record["parent"] == "s" * 16
        assert record["trace"] == "t" * 16

    def test_error_exit_tags_the_span(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        [record] = read_trace(sink)
        assert record["tags"]["error"] == "ValueError"

    def test_read_trace_skips_torn_lines(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        good = {"name": "a", "span": "1", "parent": None}
        sink.write_text(json.dumps(good) + "\n" + '{"name": "torn', "utf-8")
        assert read_trace(str(sink)) == [good]


# -- metrics merge ------------------------------------------------------------


def _random_snapshot(rng):
    # Every observed value is a small multiple of 0.25, so float sums
    # are exact and bit-for-bit associativity is a fair assertion (the
    # real invariant is associativity up to float rounding of totals).
    registry = MetricsRegistry()
    for name in rng.sample(["c.a", "c.b", "c.c", "c.d"], rng.randint(1, 4)):
        registry.counter(name).inc(rng.randint(1, 100))
    for name in rng.sample(["g.x", "g.y"], rng.randint(0, 2)):
        registry.gauge(name).set(rng.randint(0, 200) * 0.25)
    for name in ("h.same", "h.mixed"):
        if rng.random() < 0.8:
            # h.mixed sometimes uses different bounds: the merge must
            # degrade those to a scalar summary, associatively.
            bounds = (
                TIME_BUCKETS
                if name == "h.same" or rng.random() < 0.5
                else (0.5, 1.0)
            )
            hist = registry.histogram(name, bounds)
            for _ in range(rng.randint(1, 5)):
                hist.observe(rng.randint(0, 8) * 0.25)
    for _ in range(rng.randint(0, 3)):
        registry.slow.record(
            f"job:{rng.randint(0, 3)}", rng.randint(0, 20) * 0.25, tag="t"
        )
    return registry.snapshot()


class TestMetrics:
    def test_counters_sum_gauges_max_histograms_bucket_sum(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("depth").set(7)
        a.histogram("t", TIME_BUCKETS).observe(0.5)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("depth").set(2)
        b.histogram("t", TIME_BUCKETS).observe(0.0002)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 7
        assert merged["gauges"]["depth"] == 7.0
        hist = merged["histograms"]["t"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(0.5002)
        assert sum(hist["counts"]) == 2
        assert hist["bounds"] == list(TIME_BUCKETS)

    def test_mismatched_bounds_degrade_to_scalar_summary(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (5.0,)).observe(3.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        hist = merged["histograms"]["h"]
        assert hist["bounds"] == [] and hist["counts"] == []
        assert hist["count"] == 2
        assert hist["min"] == 0.5 and hist["max"] == 3.0

    def test_merge_is_associative_on_random_snapshots(self):
        rng = random.Random(117)
        for _ in range(25):
            a, b, c = (_random_snapshot(rng) for _ in range(3))
            left = merge_snapshots([merge_snapshots([a, b]), c])
            right = merge_snapshots([a, merge_snapshots([b, c])])
            flat = merge_snapshots([a, b, c])
            assert left == right == flat

    def test_slow_log_keeps_the_global_top_n(self):
        a = MetricsRegistry(slow_limit=2)
        a.slow.record("fast", 0.1, tag="one")
        a.slow.record("slow", 9.0, tag="one")
        b = MetricsRegistry(slow_limit=2)
        b.slow.record("slower", 12.0, tag="two")
        merged = merge_snapshots([a.snapshot(), b.snapshot()], slow_limit=2)
        assert [e["name"] for e in merged["slow"]] == ["slower", "slow"]
        assert merged["slow"][0]["tags"] == {"tag": "two"}


# -- cross-process propagation ------------------------------------------------


def _write_docs(tmp_path, texts):
    paths = []
    for index, text in enumerate(texts):
        path = str(tmp_path / f"doc{index}.slpb")
        slp_io.save_binary(balanced_slp(text), path)
        paths.append(path)
    return paths


class TestPropagation:
    def test_spawn_lane_worker_spans_parent_to_the_root(self, tmp_path):
        sink = str(tmp_path / "trace.jsonl")
        # the parallel API captures the *process-global* tracer's
        # current span as the workers' parent context
        tracer = Tracer(sink)
        set_tracer(tracer)
        spec = SpannerSpec(pattern=r".*(?P<x>a+)b.*", alphabet="ab")
        try:
            with tracer.span("client.root"):
                results = parallel_many(
                    [spec, spec],
                    balanced_slp("aabab" * 20),
                    task="count",
                    jobs=2,
                )
        finally:
            set_tracer(None)
        assert len(results) == 2 and results[0] == results[1] > 0
        records = read_trace(sink)
        root_record = next(r for r in records if r["name"] == "client.root")
        below = descendants(records, root_record["span"])
        shard_spans = [r for r in below if r["name"] == "worker.shard"]
        assert shard_spans, "no worker.shard span parented to the root"
        assert any(r["pid"] != os.getpid() for r in shard_spans), (
            "worker spans should come from other processes"
        )
        # engine internals nest under the worker's shard span
        engine_spans = [r for r in below if r["name"].startswith("engine.")]
        shard_ids = {r["span"] for r in shard_spans}
        assert engine_spans and all(
            r["parent"] in shard_ids for r in engine_spans
        )

    def test_daemon_round_trip_traces_into_one_file(
        self, tmp_path, service_socket
    ):
        sink = str(tmp_path / "trace.jsonl")
        paths = _write_docs(tmp_path, ["abab" * 30, "aabb" * 25])
        spec = SpannerSpec(pattern=r".*(?P<x>a+)b.*", alphabet="ab")
        config = SessionConfig(jobs=2, store_dir=str(tmp_path / "store"))
        with ServiceThread(config, service_socket) as svc:
            with connect(svc.socket_path, trace=sink, timeout=120.0) as session:
                counts = session.corpus(spec, paths, task="count")
        assert counts == [60, 50]
        records = read_trace(sink)
        [root] = [r for r in records if r["name"] == "session.request"]
        below = descendants(records, root["span"])
        names = {r["name"] for r in below}
        assert "service.run" in names
        assert "scheduler.queue" in names
        assert "worker.shard" in names
        assert names & {"engine.kernel_build", "engine.store_restore"}
        # monotonic, non-overlapping stage accounting: every finished
        # span nests inside its parent's interval (one monotonic clock
        # domain across processes on this host)
        by_span = {r["span"]: r for r in records}
        for record in records:
            parent = by_span.get(record.get("parent"))
            if parent is None or parent.get("end") is None:
                continue
            assert parent["start"] <= record["start"]
            assert record["end"] <= parent["end"]
        # the queue span ends at first dispatch, before the job is done
        queue = next(r for r in below if r["name"] == "scheduler.queue")
        run = next(r for r in below if r["name"] == "service.run")
        assert queue["end"] <= run["end"]

    def test_daemon_metrics_op_merges_fleet_snapshots(
        self, tmp_path, service_socket
    ):
        paths = _write_docs(tmp_path, ["abab" * 30])
        spec = SpannerSpec(pattern=r".*(?P<x>a+)b.*", alphabet="ab")
        config = SessionConfig(jobs=1)
        with ServiceThread(config, service_socket) as svc:
            with connect(
                svc.socket_path, timeout=120.0, tag="tenant-a"
            ) as session:
                session.corpus(spec, paths, task="count")
            with ServiceClient(svc.socket_path, timeout=120.0) as client:
                metrics = client.metrics()
                info = client.ping()
        assert {"daemon", "workers", "combined"} <= set(metrics)
        assert metrics["jobs_run"] == 1
        combined = metrics["combined"]
        assert combined["counters"]["worker.shards_done"] >= 1
        assert combined["counters"]["scheduler.jobs_completed"] == 1
        assert combined["counters"]["wire.frames"] >= 1
        assert combined["histograms"]["scheduler.job_seconds"]["count"] == 1
        # the slow-query log attributes the job to its tenant tag
        [entry] = metrics["daemon"]["slow"]
        assert entry["name"] == "job:count"
        assert entry["tags"]["tag"] == "tenant-a"
        # the richer ping carries a slow-log teaser too
        assert "slow" in info


# -- zero-overhead wire compatibility ----------------------------------------


class TestWireCompatibility:
    def test_untraced_run_frames_are_byte_identical_to_legacy(self):
        """Tracing off must not add wire fields: the exact request params
        a pre-tracing client would send, byte-for-byte once packed."""
        captured = {}

        class CapturingClient(ServiceClient):
            def request(self, op, **params):
                captured["op"] = op
                captured["params"] = params
                return {"task": "count", "results": []}

        client = CapturingClient("/nonexistent.sock")
        client.run_grid(["d.slpb"], [], task="count", limit=None, trace=None)
        legacy_params = dict(
            documents=["d.slpb"], spanners=[], task="count", limit=None
        )
        assert captured["params"] == legacy_params
        frame = protocol.pack_frame(
            {"id": 1, "op": captured["op"], **captured["params"]}
        )
        legacy_frame = protocol.pack_frame(
            {"id": 1, "op": "run", **legacy_params}
        )
        assert frame == legacy_frame

    def test_traced_run_attaches_the_context_field(self):
        captured = {}

        class CapturingClient(ServiceClient):
            def request(self, op, **params):
                captured.update(params)
                return {"task": "count", "results": []}

        ctx = TraceContext(trace_id="t" * 16, span_id="s" * 16, path="/t.jsonl")
        CapturingClient("/nonexistent.sock").run_grid(
            ["d.slpb"], [], task="count", trace=ctx.to_wire()
        )
        assert captured["trace"] == {
            "id": "t" * 16,
            "span": "s" * 16,
            "path": "/t.jsonl",
        }
