"""Every worked example of the paper, reproduced as an executable test.

* Example in the introduction (D = abcca, the (b|c)* ⊿x a ◁x Σ* ⊿y c+ ◁y Σ* spanner)
* Example 3.2 (subword-marked words, e/p/m)
* Example 4.1 (SLP of size 16 for a 25-symbol document)
* Example 4.2 / Figure 3 (normal-form SLP for aabccaabaa)
* Example 6.1 (partial marker sets and the ⊗ operator)
* Example 8.2 / Figure 4 ((M,S)-trees and their yields)
* Section 4.2 (a^(2^n) needs only n+1 rules; log d lower bound)
"""

import math

from repro.slp.derive import text
from repro.slp.families import example_4_1, example_4_2, power_slp
from repro.slp.construct import balanced_slp
from repro.spanner.marked_words import e, m, p
from repro.spanner.markers import (
    cl,
    combine,
    from_span_tuple,
    make_pairs,
    op,
    to_span_tuple,
)
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.core.computation import compute
from repro.workloads.queries import figure2_spanner


class TestIntroductionExample:
    """Page 1: D = abcca maps to {([1,2⟩,[3,4⟩), ([1,2⟩,[4,5⟩), ([1,2⟩,[3,5⟩)}."""

    def test_relation(self):
        spanner = compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")
        got = compute(balanced_slp("abcca"), spanner)
        assert got == frozenset(
            {
                SpanTuple({"x": Span(1, 2), "y": Span(3, 4)}),
                SpanTuple({"x": Span(1, 2), "y": Span(4, 5)}),
                SpanTuple({"x": Span(1, 2), "y": Span(3, 5)}),
            }
        )

    def test_subword_marked_encodings(self):
        """The three subword-marked words given on page 2 all encode D with
        the respective span-tuples."""
        spanner = compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")
        words = [
            # ⊿x a ◁x b ⊿y c ◁y ca
            (frozenset({op("x")}), "a", frozenset({cl("x")}), "b",
             frozenset({op("y")}), "c", frozenset({cl("y")}), "c", "a"),
            # ⊿x a ◁x bc ⊿y c ◁y a
            (frozenset({op("x")}), "a", frozenset({cl("x")}), "b", "c",
             frozenset({op("y")}), "c", frozenset({cl("y")}), "a"),
            # ⊿x a ◁x b ⊿y cc ◁y a
            (frozenset({op("x")}), "a", frozenset({cl("x")}), "b",
             frozenset({op("y")}), "c", "c", frozenset({cl("y")}), "a"),
        ]
        for word in words:
            assert e(word) == "abcca"
            assert spanner.accepts(word)


class TestExample32:
    def test_marker_set(self):
        word = (
            frozenset({op("x")}), "a", "b",
            frozenset({op("y"), op("z"), cl("x")}), "b", "c",
            frozenset({cl("z")}), "a", "b", frozenset({cl("y")}), "a", "c",
        )
        assert e(word) == "abbcabac"
        assert to_span_tuple(p(word)) == SpanTuple(
            {"x": Span(1, 3), "y": Span(3, 7), "z": Span(3, 5)}
        )

    def test_m_of_d_and_t(self):
        doc = "aaabcbb"
        tup = SpanTuple({"x": Span(6, 8), "z": Span(3, 8)})
        word = m(doc, from_span_tuple(tup))
        # aa{⊿z}abc{⊿x}bb{◁x,◁z}
        assert word == (
            "a", "a", frozenset({op("z")}), "a", "b", "c",
            frozenset({op("x")}), "b", "b", frozenset({cl("x"), cl("z")}),
        )


class TestExample41:
    def test_document(self):
        slp = example_4_1()
        assert text(slp) == "baababaabbabaababaabbaabb"

    def test_sub_derivations(self):
        # D(B) = baab, D(A) = D(B) a D(B) = baababaab
        slp = example_4_1()
        assert text(slp, root="B") == "baab"
        assert text(slp, root="A") == "baababaab"

    def test_compression(self):
        """The paper: size(S) = 16 < 25 = |D(S)| for the original rules."""
        general_rules = {"S0": list("A") + ["b", "a", "A", "B", "b"],
                         "A": ["B", "a", "B"], "B": list("baab")}
        original_size = len(general_rules) + sum(len(r) for r in general_rules.values())
        assert original_size == 16 < 25
        # the normal-form (binarised) version pays a constant factor but
        # still derives the same 25-symbol document
        slp = example_4_1()
        assert slp.length() == 25
        assert slp.size <= 3 * original_size


class TestExample42:
    def test_document_and_figure3_tree(self):
        slp = example_4_2()
        assert text(slp) == "aabccaabaa"
        for name, derived in [
            ("E", "aa"), ("C", "aab"), ("D", "cc"), ("A", "aabcc"), ("B", "aabaa"),
        ]:
            assert text(slp, root=name) == derived

    def test_depths(self):
        slp = example_4_2()
        # Figure 3: leaves at depth 1, E=2, C=3, D=2, A=4, B=4, S0=5
        assert slp.depth("E") == 2
        assert slp.depth("C") == 3
        assert slp.depth("A") == 4
        assert slp.depth() == 5


class TestExample61:
    def test_combination(self):
        lam1 = make_pairs([(2, op("y")), (4, op("z")), (4, op("x")), (6, cl("z"))])
        lam2 = make_pairs([(2, cl("x")), (4, cl("y"))])
        combined = combine(lam1, lam2, 6)
        assert to_span_tuple(combined) == SpanTuple(
            {"y": Span(2, 10), "z": Span(4, 6), "x": Span(4, 8)}
        )

    def test_m_d1_lambda1(self):
        lam1 = make_pairs([(2, op("y")), (4, op("z")), (4, op("x")), (6, cl("z"))])
        word = m("ababcc", lam1)
        assert word == (
            "a", frozenset({op("y")}), "b", "a",
            frozenset({op("z"), op("x")}), "b", "c", frozenset({cl("z")}), "c",
        )


class TestExample82:
    def test_relation_on_figure2_dfa(self):
        result = compute(example_4_2(), figure2_spanner())
        expected = {
            SpanTuple({v: s}) for v in ("x", "y") for s in (Span(4, 5), Span(4, 6))
        }
        assert result == expected

    def test_figure4_yield(self):
        """yield(T) = {{(⊿y,4), (◁y,6)}} for the tree of Figure 4."""
        target = SpanTuple({"y": Span(4, 6)})
        assert target in compute(example_4_2(), figure2_spanner())


class TestSection42Bounds:
    def test_a_power_2n_has_n_plus_1_rules(self):
        """Sec 4.2: strings a^(2^n) can be represented by n+1 rules."""
        slp = power_slp("a", 10)
        # our encoding: 1 leaf rule + 10 doubling rules = 11 = n + 1
        assert slp.num_nonterminals == 11

    def test_log_lower_bound(self):
        """size(S) >= log |D| for every SLP (Charikar et al., Lemma 1)."""
        for slp in (example_4_1(), example_4_2(), power_slp("a", 20)):
            assert slp.size >= math.log2(slp.length())
