"""Tests for repro.core.computation (Theorem 7.1)."""

import random

import pytest

from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.families import caterpillar_slp, power_slp, repeated_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.baselines.naive import naive_evaluate
from repro.core.computation import compute

from tests.conftest import WELLFORMED_PATTERNS, random_doc


class TestSmallDocuments:
    def test_intro_example(self):
        """The paper's introduction: D = abcca."""
        nfa = compile_spanner(r"[bc]*(?P<x>a).*(?P<y>c+).*", alphabet="abc")
        result = compute(balanced_slp("abcca"), nfa)
        assert result == frozenset(
            {
                SpanTuple({"x": Span(1, 2), "y": Span(3, 4)}),
                SpanTuple({"x": Span(1, 2), "y": Span(4, 5)}),
                SpanTuple({"x": Span(1, 2), "y": Span(3, 5)}),
            }
        )

    def test_empty_relation(self):
        nfa = compile_spanner(r"(?P<x>aa)", alphabet="ab")
        assert compute(balanced_slp("ab"), nfa) == frozenset()

    def test_empty_tuple_result(self):
        nfa = compile_spanner(r"b+|(?P<x>a)", alphabet="ab")
        result = compute(balanced_slp("bb"), nfa)
        assert result == frozenset({SpanTuple()})

    def test_span_touching_document_end(self):
        nfa = compile_spanner(r"a(?P<x>b+)", alphabet="ab")
        result = compute(balanced_slp("abb"), nfa)
        assert result == frozenset({SpanTuple({"x": Span(2, 4)})})

    def test_empty_span_capture(self):
        nfa = compile_spanner(r"a(?P<x>)b", alphabet="ab")
        result = compute(balanced_slp("ab"), nfa)
        assert result == frozenset({SpanTuple({"x": Span(2, 2)})})

    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS)
    def test_matches_naive_reference(self, pattern, alphabet, compiled_patterns):
        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) & 0xFFFFF)
        for _ in range(5):
            doc = random_doc(rng, alphabet, 7)
            assert compute(balanced_slp(doc), nfa) == naive_evaluate(nfa, doc), doc


class TestGrammarShapes:
    def test_same_result_for_different_grammars(self):
        """⟦M⟧(D) must not depend on which SLP represents D."""
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        doc = "ab" * 8
        results = {
            compute(balanced_slp(doc), nfa),
            compute(bisection_slp(doc), nfa),
            compute(power_slp("ab", 3), nfa),
            compute(repeated_slp("ab", 8), nfa),
        }
        assert len(results) == 1

    def test_deep_grammar_no_recursion_error(self):
        from repro.slp.derive import text

        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        deep = caterpillar_slp(1500)
        flat = balanced_slp(text(deep))
        assert compute(deep, nfa) == compute(flat, nfa)

    def test_compressed_document_counts(self):
        """r results on a (ab)^2^k document: one per 'ab' occurrence."""
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = power_slp("ab", 6)  # (ab)^64
        result = compute(slp, nfa)
        assert len(result) == 64
        assert SpanTuple({"x": Span(1, 3)}) in result
        assert SpanTuple({"x": Span(127, 129)}) in result

    def test_nfa_duplicates_collapsed(self):
        """An ambiguous NFA must not produce duplicate tuples."""
        nfa = compile_spanner(r"(.*(?P<x>ab).*)|(.*(?P<x>ab).*b*)", alphabet="ab")
        result = compute(balanced_slp("abab"), nfa)
        assert len(result) == 2
