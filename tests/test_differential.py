"""Differential test harness: every engine configuration vs two baselines.

A seeded generator produces random (spanner, document) pairs and
cross-checks the :class:`~repro.engine.Engine` — identity keys, structural
keys, and store-backed, each both cold and warm — against the brute-force
reference (:mod:`repro.baselines.naive`) and the uncompressed
product-DAG evaluator (:mod:`repro.baselines.uncompressed`) on all four
paper tasks (non-emptiness, model checking, evaluation, enumeration) plus
counting.

Documents stay tiny (the naive baseline is exponential in the number of
variables), but the random regexes exercise concatenation, alternation,
repetition, optionality, character classes and one or two capture
variables, and every document is compressed by a different SLP builder
per engine pass — so structurally *different* grammars of the same text
must also agree.

The store directory defaults to a per-test tmp dir but honours
``REPRO_STORE_DIR`` so CI can point two consecutive runs at one cached
directory and exercise the warm-restart path (second run: store hits).

A parallel lane (``test_parallel_corpus_bit_identical_to_serial``) holds
:func:`repro.parallel.parallel_corpus` at ``jobs=2`` bit-identical — same
values, same order — to the serial engine on the same seeded workloads,
cold, store-warm, and through a crashed-worker re-queue.

Every lane additionally fans out over a *kernel axis*: the whole matrix
runs once per available bit-plane backend (:mod:`repro.core.kernels` —
``python`` everywhere, plus ``numpy`` where importable), and both
backends share one store directory, so entries written by one kernel are
restored by the other mid-harness.  Backends must be bit-identical in
every configuration; this is the safety net the kernel subsystem is
built against.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.baselines.naive import naive_evaluate, naive_model_check
from repro.baselines.uncompressed import UncompressedEvaluator
from repro.core.kernels import available_kernels
from repro.engine import Engine
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.store import PreprocessingStore

BUILDERS = [balanced_slp, repair_slp, bisection_slp, lz_slp]

#: The kernel axis: every differential lane runs once per backend.
KERNELS = list(available_kernels())

PAIRS_PER_SEED = 5


# -- the seeded (spanner, document) generator ---------------------------------


def random_fragment(rng: random.Random, alphabet: str, depth: int) -> str:
    """A random variable-free regex fragment over ``alphabet``."""
    if depth <= 0 or rng.random() < 0.4:
        choice = rng.random()
        if choice < 0.6:
            return rng.choice(alphabet)
        if choice < 0.8:
            return f"[{alphabet}]"
        return "."
    kind = rng.random()
    if kind < 0.4:
        return random_fragment(rng, alphabet, depth - 1) + random_fragment(
            rng, alphabet, depth - 1
        )
    if kind < 0.6:
        left = random_fragment(rng, alphabet, depth - 1)
        right = random_fragment(rng, alphabet, depth - 1)
        return f"(?:{left}|{right})"
    atom = random_fragment(rng, alphabet, depth - 1)
    return f"(?:{atom}){rng.choice('*+?')}"


def random_spanner_pattern(rng: random.Random, alphabet: str, num_vars: int) -> str:
    """A random spanner regex: each variable captured exactly once."""
    parts = []
    if rng.random() < 0.8:
        parts.append(random_fragment(rng, alphabet, 2))
    for k in range(num_vars):
        var = "xy"[k]
        parts.append(f"(?P<{var}>{random_fragment(rng, alphabet, 2)})")
        if rng.random() < 0.7:
            parts.append(random_fragment(rng, alphabet, 2))
    return "".join(parts)


def random_pairs(seed: int):
    """``PAIRS_PER_SEED`` random (spanner, document, alphabet) triples."""
    rng = random.Random(0xD1FF + seed)
    out = []
    while len(out) < PAIRS_PER_SEED:
        alphabet = rng.choice(["ab", "abc"])
        num_vars = 2 if rng.random() < 0.35 else 1
        pattern = random_spanner_pattern(rng, alphabet, num_vars)
        try:
            spanner = compile_spanner(pattern, alphabet=alphabet)
        except Exception:
            continue  # e.g. a fragment the compiler rejects; draw again
        max_len = 7 if num_vars == 2 else 10
        doc = "".join(
            rng.choice(alphabet) for _ in range(rng.randint(1, max_len))
        )
        out.append((pattern, spanner, doc, alphabet))
    return out


# -- the cross-check core -----------------------------------------------------


def check_engine_against_reference(engine, spanner, slp, doc, expected, rng):
    """One engine pass over all four tasks + counting, cold then warm."""
    for attempt in ("cold", "warm"):
        assert engine.is_nonempty(spanner, slp) == bool(expected), attempt
        assert engine.evaluate(spanner, slp) == expected, attempt
        assert engine.count(spanner, slp) == len(expected), attempt
        streamed = list(engine.enumerate(spanner, slp))
        assert len(streamed) == len(set(streamed)), f"{attempt}: duplicates"
        assert frozenset(streamed) == expected, attempt
        for tup in list(expected)[:3]:
            assert engine.model_check(spanner, slp, tup), attempt
        # a few tuples that must NOT be in the relation
        n = slp.length()
        for _ in range(3):
            start = rng.randint(1, n + 1)
            end = rng.randint(start, n + 1)
            probe = SpanTuple(
                {var: Span(start, end) for var in sorted(spanner.variables)}
            )
            assert engine.model_check(spanner, slp, probe) == (
                probe in expected
            ), attempt
            assert naive_model_check(spanner, doc, probe) == (probe in expected)


@pytest.fixture
def store_dir(tmp_path):
    """Store directory: ``REPRO_STORE_DIR`` (CI warm-restart) or a tmp dir."""
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        os.makedirs(env, exist_ok=True)
        return env
    return str(tmp_path / "prep-store")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", range(12))
def test_differential_engines_vs_baselines(seed, kernel, store_dir):
    rng = random.Random(0xC0FFEE + seed)
    # One store directory for the whole axis: the numpy pass restores
    # entries the python pass persisted (and vice versa on warm CI runs).
    store = PreprocessingStore(store_dir)
    engines = [
        Engine(kernel=kernel),
        Engine(structural_keys=True, kernel=kernel),
        Engine(store=store, kernel=kernel),
        Engine(structural_keys=True, store=store, kernel=kernel),
    ]
    for index, (pattern, spanner, doc, _alphabet) in enumerate(random_pairs(seed)):
        expected = naive_evaluate(spanner, doc)
        uncompressed = UncompressedEvaluator(spanner, doc)
        assert uncompressed.evaluate() == expected, pattern
        assert uncompressed.is_nonempty() == bool(expected), pattern
        assert uncompressed.count() == len(expected), pattern
        for engine_index, engine in enumerate(engines):
            builder = BUILDERS[(index + engine_index) % len(BUILDERS)]
            slp = builder(doc)
            check_engine_against_reference(engine, spanner, slp, doc, expected, rng)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", [0, 7])
def test_parallel_corpus_bit_identical_to_serial(seed, kernel, store_dir, tmp_path):
    """The parallel lane: ``parallel_corpus`` at ``jobs=2`` must return
    bit-identical results, in identical order, to serial
    ``evaluate_corpus`` — cold, store-warm, and across a crashed-worker
    re-queue.

    Each seeded pair becomes a small corpus of structurally *different*
    grammars of the same document (every builder once, plus a duplicate
    for the digest-affinity path), so the workers must agree with the
    serial engine on every compression of every document.
    """
    from repro.parallel import parallel_corpus

    pairs = random_pairs(seed)[:3]
    for pair_index, (pattern, spanner, doc, _alphabet) in enumerate(pairs):
        expected = naive_evaluate(spanner, doc)
        slps = [builder(doc) for builder in BUILDERS] + [balanced_slp(doc)]
        serial = Engine(kernel=kernel).evaluate_corpus(spanner, slps)
        assert all(r == expected for r in serial), pattern

        corpus_store = os.path.join(store_dir, f"parallel-{seed}-{pair_index}")
        # cold: nothing persisted yet (first CI run) or restored from the
        # cached directory (second CI run) — results must not care.  The
        # store is shared across the kernel axis on purpose.
        cold = parallel_corpus(
            spanner, slps, jobs=2, store=corpus_store, kernel=kernel, timeout=120
        )
        assert cold == serial, pattern
        # store-warm: every table now restorable from disk.
        warm = parallel_corpus(
            spanner, slps, jobs=2, store=corpus_store, kernel=kernel, timeout=120
        )
        assert warm == serial, pattern
    # crashed-worker re-queue: inject one hard crash (os._exit) into the
    # first shard; the re-run on a surviving worker must still be
    # bit-identical.
    pattern, spanner, doc, _alphabet = pairs[0]
    slps = [builder(doc) for builder in BUILDERS]
    serial = Engine(kernel=kernel).evaluate_corpus(spanner, slps)
    token = f"{tmp_path / 'diff-crash'}:1"
    report = parallel_corpus(
        spanner, slps, jobs=2, kernel=kernel, timeout=120, report=True,
        _fault_tokens={0: token},
    )
    assert report.workers_crashed == 1 and report.retries == 1
    assert report.results == serial


@pytest.mark.parametrize("seed", [0, 7])
def test_session_backends_bit_identical_to_serial(seed, store_dir, service_socket):
    """The session-backend axis: one :class:`~repro.session.Session`
    facade, three execution backends — in-process serial, in-process
    parallel (jobs=2), and the unix-socket daemon — all bit-identical
    (same values, same order) to the serial engine on every task.

    The daemon lane runs twice against one daemon (second pass:
    worker-memory warm) and then once more against a *restarted* daemon
    sharing the same store directory (store-warm across daemon
    restarts); warmth must never change a result.
    """
    from repro.session import SessionConfig, connect
    from repro.service.server import ServiceThread

    pairs = random_pairs(seed)[:3]
    corpora = []
    for pattern, spanner, doc, _alphabet in pairs:
        slps = [builder(doc) for builder in BUILDERS] + [balanced_slp(doc)]
        engine = Engine()
        corpora.append(
            (
                pattern,
                spanner,
                slps,
                engine.evaluate_corpus(spanner, slps),
                engine.count_corpus(spanner, slps),
                [list(engine.enumerate(spanner, slp)) for slp in slps],
            )
        )

    def check_session(session):
        for pattern, spanner, slps, evaluated, counts, enumerated in corpora:
            assert session.corpus(spanner, slps, task="evaluate") == evaluated, pattern
            assert session.corpus(spanner, slps, task="count") == counts, pattern
            assert session.corpus(spanner, slps, task="enumerate") == enumerated, pattern
            assert session.corpus(spanner, slps, task="nonempty") == [
                bool(r) for r in evaluated
            ], pattern

    daemon_store = os.path.join(store_dir, f"session-daemon-{seed}")
    with connect() as serial_session:
        check_session(serial_session)
    with connect(jobs=2, timeout=240) as pooled_session:
        check_session(pooled_session)
    config = SessionConfig(jobs=2, store_dir=daemon_store)
    with ServiceThread(config, service_socket) as svc:
        with connect(svc.socket_path, timeout=240) as daemon_session:
            check_session(daemon_session)  # cold fleet
            check_session(daemon_session)  # worker-memory warm
    # a fresh daemon on the same store: warm from disk, still identical
    with ServiceThread(config, service_socket) as svc:
        with connect(svc.socket_path, timeout=240) as daemon_session:
            check_session(daemon_session)


def test_daemon_bit_identical_under_cancellation_and_crashes(
    store_dir, service_socket, tmp_path, monkeypatch
):
    """The scheduler lane: multi-tenant interference must never change
    results.  A measured grid runs (a) while an unrelated tagged job is
    cancelled mid-flight and (b) with a retryable worker crash injected
    into its own first shard; both answers must be bit-identical to the
    serial engine.
    """
    import threading

    from repro.service.client import ServiceClient
    from repro.service.protocol import ServiceError
    from repro.service.server import TEST_FAULTS_ENV, ServiceThread
    from repro.session import SessionConfig
    from repro.slp import io as slp_io

    monkeypatch.setenv(TEST_FAULTS_ENV, "1")
    pattern, spanner, doc, _alphabet = random_pairs(3)[0]
    slps = [builder(doc) for builder in BUILDERS]
    serial = Engine().evaluate_corpus(spanner, slps)
    paths = []
    for k, slp in enumerate(slps):
        path = str(tmp_path / f"doc{k}.slpb")
        slp_io.save_binary(slp, path)
        paths.append(path)
    victim_paths = []
    for k in range(4):
        path = str(tmp_path / f"victim{k}.slpb")
        slp_io.save_binary(balanced_slp(doc + "a" * (k + 1)), path)
        victim_paths.append(path)

    config = SessionConfig(jobs=2, store_dir=os.path.join(store_dir, "sched"))
    with ServiceThread(config, service_socket) as svc:
        # (a) an unrelated job is cancelled while the measured job runs
        victim_error = []

        def doomed_tenant():
            with ServiceClient(svc.socket_path, timeout=240) as victim:
                try:
                    victim.run_grid(
                        victim_paths, [spanner], task="evaluate",
                        tag="doomed", _test_params={"_shard_sleep": 8.0},
                    )
                except ServiceError as exc:
                    victim_error.append(exc)

        tenant = threading.Thread(target=doomed_tenant, daemon=True)
        tenant.start()
        with ServiceClient(svc.socket_path, timeout=240) as client:
            import time

            time.sleep(0.5)  # the victim's shards are on the fleet
            assert client.cancel("doomed") == 1
            assert client.run_grid(paths, [spanner], task="evaluate") == serial, (
                pattern
            )
            tenant.join(240)
            assert victim_error and (
                victim_error[0].remote_type == "JobCancelledError"
            )
            # (b) a worker crash inside the measured job itself: the
            # retried shard must reproduce the exact same relations
            token = f"{tmp_path / 'sched-crash'}:1"
            crashed = client.run_grid(
                paths, [spanner], task="evaluate",
                _test_params={"_fault_tokens": {0: token}},
            )
            assert crashed == serial, pattern
            info = client.ping()
            assert info["scheduler"]["workers_crashed"] >= 1
            assert info["fleet"]["alive"] == 2


def test_store_backed_restart_agrees_and_hits(store_dir):
    """A fresh process (fresh engine + fresh SLP objects) must hit the store."""
    pattern, spanner, doc, _ = random_pairs(991)[0]
    expected = naive_evaluate(spanner, doc)

    first = Engine(store=PreprocessingStore(store_dir))
    assert first.evaluate(spanner, balanced_slp(doc)) == expected
    assert first.count(spanner, balanced_slp(doc)) == len(expected)

    restarted_store = PreprocessingStore(store_dir)
    second = Engine(store=restarted_store, structural_keys=True)
    assert second.evaluate(spanner, balanced_slp(doc)) == expected
    assert second.count(spanner, balanced_slp(doc)) == len(expected)
    assert restarted_store.stats.hits >= 1
    # the counting tables were persisted too: counting reports a cache hit
    # without a single counting-table build in this "process"
    assert second.cache_stats()["counting"].misses == 0
