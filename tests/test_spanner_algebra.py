"""Tests for repro.spanner.algebra (union / projection / join / rename)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import AutomatonError
from repro.slp.construct import balanced_slp
from repro.spanner.algebra import (
    compatible,
    join_relations,
    join_spanners,
    nfa_to_va,
    project_relation,
    project_spanner,
    rename_relation,
    rename_spanner,
    select_relation,
    union_relations,
    union_spanners,
)
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.baselines.naive import naive_evaluate
from repro.core.computation import compute

PATTERNS = [
    (r".*(?P<x>ab?).*", "ab"),
    (r"(?P<x>a*)(?P<y>b*)", "ab"),
    (r"b*(?P<y>a)b*", "ab"),
    (r"(?P<z>.).*", "ab"),
    (r".*(?P<x>a)(?P<y>b).*", "ab"),
]


def compiled(pattern):
    return compile_spanner(pattern, alphabet="ab")


class TestUnion:
    def test_simple(self):
        u = union_spanners(compiled(r"(?P<x>a)b"), compiled(r"a(?P<y>b)"))
        assert naive_evaluate(u, "ab") == frozenset(
            {SpanTuple({"x": Span(1, 2)}), SpanTuple({"y": Span(2, 3)})}
        )

    def test_variables_merged(self):
        u = union_spanners(compiled(r"(?P<x>a)"), compiled(r"(?P<y>b)"))
        assert u.variables == frozenset({"x", "y"})

    def test_union_random_matches_relation_union(self):
        rng = random.Random(3)
        for _ in range(12):
            (p1, _), (p2, _) = rng.sample(PATTERNS, 2)
            n1, n2 = compiled(p1), compiled(p2)
            doc = "".join(rng.choice("ab") for _ in range(rng.randint(1, 6)))
            assert naive_evaluate(union_spanners(n1, n2), doc) == union_relations(
                naive_evaluate(n1, doc), naive_evaluate(n2, doc)
            ), (p1, p2, doc)

    def test_union_runs_compressed(self):
        u = union_spanners(compiled(r".*(?P<x>aa).*"), compiled(r".*(?P<x>bb).*"))
        slp = balanced_slp("aabb")
        assert compute(slp, u) == naive_evaluate(u, "aabb")


class TestProjection:
    def test_drop_one_variable(self):
        p = project_spanner(compiled(r"(?P<x>a)(?P<y>b)"), ["x"])
        assert naive_evaluate(p, "ab") == frozenset({SpanTuple({"x": Span(1, 2)})})
        assert p.variables == frozenset({"x"})

    def test_project_to_nothing_gives_boolean_spanner(self):
        p = project_spanner(compiled(r"(?P<x>a)b"), [])
        assert naive_evaluate(p, "ab") == frozenset({SpanTuple()})
        assert naive_evaluate(p, "ba") == frozenset()

    def test_projection_random_matches_relation_projection(self):
        rng = random.Random(7)
        for pattern, _ in PATTERNS:
            nfa = compiled(pattern)
            doc = "".join(rng.choice("ab") for _ in range(rng.randint(1, 6)))
            for keep in ([], ["x"], ["y"], ["x", "y"]):
                assert naive_evaluate(
                    project_spanner(nfa, keep), doc
                ) == project_relation(naive_evaluate(nfa, doc), keep), (pattern, keep, doc)

    def test_nfa_to_va_inverse_of_extended(self):
        from repro.spanner.va import to_extended_nfa

        nfa = compiled(r"(?P<x>a*)(?P<y>b*)")
        rebuilt = to_extended_nfa(nfa_to_va(nfa))
        for doc in ("", "a", "ab", "abb", "ba"):
            assert naive_evaluate(rebuilt, doc) == naive_evaluate(nfa, doc)


class TestRename:
    def test_rename(self):
        r = rename_spanner(compiled(r"(?P<x>a)b"), {"x": "u"})
        assert naive_evaluate(r, "ab") == frozenset({SpanTuple({"u": Span(1, 2)})})

    def test_partial_rename(self):
        r = rename_spanner(compiled(r"(?P<x>a)(?P<y>b)"), {"y": "w"})
        assert r.variables == frozenset({"x", "w"})

    def test_non_injective_rejected(self):
        with pytest.raises(AutomatonError):
            rename_spanner(compiled(r"(?P<x>a)(?P<y>b)"), {"x": "y"})

    def test_rename_relation(self):
        rel = frozenset({SpanTuple({"x": Span(1, 2)})})
        assert rename_relation(rel, {"x": "q"}) == frozenset(
            {SpanTuple({"q": Span(1, 2)})}
        )


class TestJoin:
    def test_chain_join(self):
        j = join_spanners(
            compiled(r".*(?P<x>a)(?P<y>b).*"), compiled(r".*(?P<y>b)(?P<z>a).*")
        )
        assert naive_evaluate(j, "aba") == frozenset(
            {SpanTuple({"x": Span(1, 2), "y": Span(2, 3), "z": Span(3, 4)})}
        )

    def test_join_disjoint_variables_is_cross_product(self):
        j = join_spanners(compiled(r".*(?P<x>a).*"), compiled(r".*(?P<y>b).*"))
        result = naive_evaluate(j, "ab")
        assert result == frozenset(
            {SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})}
        )

    def test_join_incompatible_is_empty(self):
        j = join_spanners(compiled(r"(?P<x>a)b"), compiled(r"a(?P<x>b)"))
        assert naive_evaluate(j, "ab") == frozenset()

    def test_join_equal_spanners_is_identity(self):
        nfa = compiled(r".*(?P<x>ab).*")
        j = join_spanners(nfa, nfa)
        for doc in ("ab", "abab", "ba"):
            assert naive_evaluate(j, doc) == naive_evaluate(nfa, doc)

    def test_join_random_matches_relation_join(self):
        rng = random.Random(11)
        for _ in range(15):
            (p1, _), (p2, _) = rng.sample(PATTERNS, 2)
            n1, n2 = compiled(p1), compiled(p2)
            doc = "".join(rng.choice("ab") for _ in range(rng.randint(1, 6)))
            shared = n1.variables & n2.variables
            got = naive_evaluate(join_spanners(n1, n2), doc)
            want = join_relations(
                naive_evaluate(n1, doc), naive_evaluate(n2, doc), shared
            )
            assert got == want, (p1, p2, doc)

    def test_join_runs_compressed(self):
        j = join_spanners(
            compiled(r".*(?P<x>a)(?P<y>b).*"), compiled(r".*(?P<y>b)(?P<z>a).*")
        )
        slp = balanced_slp("ababa")
        assert compute(slp, j) == naive_evaluate(j, "ababa")


class TestRelationOps:
    def test_compatible(self):
        t1 = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        t2 = SpanTuple({"y": Span(2, 3), "z": Span(3, 4)})
        assert compatible(t1, t2, ["y"])
        assert not compatible(t1, t2, ["x"])  # x undefined on one side

    def test_join_relations_defaults_shared(self):
        r1 = frozenset({SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})})
        r2 = frozenset({SpanTuple({"y": Span(2, 3), "z": Span(3, 4)})})
        joined = join_relations(r1, r2)
        assert joined == frozenset(
            {SpanTuple({"x": Span(1, 2), "y": Span(2, 3), "z": Span(3, 4)})}
        )

    def test_select_relation(self):
        doc = "aab"
        nfa = compiled(r".*(?P<x>a)(?P<y>.).*")
        rel = naive_evaluate(nfa, doc)
        same_text = select_relation(
            rel, lambda t: t["x"].value(doc) == t["y"].value(doc)
        )
        assert same_text == frozenset(
            {SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})}
        )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from([p for p, _ in PATTERNS]),
    st.sampled_from([p for p, _ in PATTERNS]),
    st.text(alphabet="ab", min_size=1, max_size=6),
)
def test_algebra_properties(p1, p2, doc):
    """Property: automaton-level algebra == relation-level algebra."""
    n1, n2 = compiled(p1), compiled(p2)
    r1, r2 = naive_evaluate(n1, doc), naive_evaluate(n2, doc)
    assert naive_evaluate(union_spanners(n1, n2), doc) == union_relations(r1, r2)
    shared = n1.variables & n2.variables
    assert naive_evaluate(join_spanners(n1, n2), doc) == join_relations(r1, r2, shared)
    keep = sorted(n1.variables)[:1]
    assert naive_evaluate(project_spanner(n1, keep), doc) == project_relation(r1, keep)
