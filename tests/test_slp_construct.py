"""Unit tests for repro.slp.construct (bisection / balanced builders)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.slp.construct import balanced_slp, bisection_slp, _largest_power_of_two_below
from repro.slp.derive import text


class TestSplitHelper:
    def test_power_of_two_inputs(self):
        assert _largest_power_of_two_below(2) == 1
        assert _largest_power_of_two_below(8) == 4
        assert _largest_power_of_two_below(1024) == 512

    def test_general_inputs(self):
        assert _largest_power_of_two_below(3) == 2
        assert _largest_power_of_two_below(5) == 4
        assert _largest_power_of_two_below(1000) == 512


class TestBisection:
    def test_roundtrip(self):
        assert text(bisection_slp("abracadabra")) == "abracadabra"

    def test_empty_rejected(self):
        with pytest.raises(GrammarError):
            bisection_slp("")

    def test_single_char(self):
        slp = bisection_slp("a")
        assert text(slp) == "a"
        assert slp.num_inner == 0

    def test_unary_power_logarithmic(self):
        slp = bisection_slp("a" * 4096)
        assert slp.num_inner == 12  # exactly log2(4096) doubling rules

    def test_periodic_compresses(self):
        periodic = bisection_slp("ab" * 2048)
        random_ish = bisection_slp("abbaabab" + "a" * 100 + "b" * 99 + "ab" * 100)
        assert periodic.num_inner < 20

    def test_depth_logarithmic(self):
        slp = bisection_slp("abc" * 321)
        assert slp.depth() <= 2 * math.log2(slp.length()) + 4

    def test_accepts_tuples(self):
        slp = bisection_slp(("x", "y", "x", "y"))
        assert text(slp) == "xyxy"


class TestBalanced:
    def test_roundtrip(self):
        assert text(balanced_slp("hello world")) == "hello world"

    def test_empty_rejected(self):
        with pytest.raises(GrammarError):
            balanced_slp("")

    def test_depth_logarithmic(self):
        slp = balanced_slp("ab" * 500)
        assert slp.depth() <= 1.4405 * math.log2(slp.length() + 2) + 3

    def test_single_char(self):
        assert text(balanced_slp("z")) == "z"


@settings(max_examples=80, deadline=None)
@given(st.text(alphabet="abc", min_size=1, max_size=120))
def test_builders_roundtrip(doc):
    """Property: both builders reproduce the input text exactly."""
    assert text(bisection_slp(doc)) == doc
    assert text(balanced_slp(doc)) == doc
