"""Tests for repro.spanner.regex (parser + Thompson + extended conversion)."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RegexSyntaxError
from repro.spanner.marked_words import m
from repro.spanner.markers import from_span_tuple
from repro.spanner.regex import (
    Alt,
    AnyChar,
    CharClass,
    Concat,
    Lit,
    Repeat,
    Var,
    compile_spanner,
    compile_va,
    parse_pattern,
    pattern_variables,
)
from repro.spanner.spans import SpanTuple


class TestParser:
    def test_literal(self):
        assert parse_pattern("a") == Lit("a")

    def test_concat(self):
        assert parse_pattern("ab") == Concat((Lit("a"), Lit("b")))

    def test_alternation(self):
        assert parse_pattern("a|b") == Alt((Lit("a"), Lit("b")))

    def test_empty_branch(self):
        node = parse_pattern("a|")
        assert node == Alt((Lit("a"), Concat(())))

    def test_star_plus_opt(self):
        assert parse_pattern("a*") == Repeat(Lit("a"), 0, None)
        assert parse_pattern("a+") == Repeat(Lit("a"), 1, None)
        assert parse_pattern("a?") == Repeat(Lit("a"), 0, 1)

    def test_bounded(self):
        assert parse_pattern("a{3}") == Repeat(Lit("a"), 3, 3)
        assert parse_pattern("a{2,5}") == Repeat(Lit("a"), 2, 5)
        assert parse_pattern("a{2,}") == Repeat(Lit("a"), 2, None)

    def test_bad_bounds(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("a{5,2}")
        with pytest.raises(RegexSyntaxError):
            parse_pattern("a{99999}")

    def test_group(self):
        assert parse_pattern("(ab)*") == Repeat(Concat((Lit("a"), Lit("b"))), 0, None)

    def test_variable(self):
        assert parse_pattern("(?P<x>a)") == Var("x", Lit("a"))

    def test_bad_variable_name(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("(?P<1x>a)")

    def test_char_class(self):
        assert parse_pattern("[abc]") == CharClass(frozenset("abc"))

    def test_char_class_range(self):
        assert parse_pattern("[a-d]") == CharClass(frozenset("abcd"))

    def test_negated_class(self):
        assert parse_pattern("[^ab]") == CharClass(frozenset("ab"), negated=True)

    def test_class_with_literal_bracket(self):
        assert parse_pattern(r"[\]]") == CharClass(frozenset("]"))

    def test_leading_close_bracket_is_literal(self):
        assert parse_pattern("[]a]") == CharClass(frozenset("]a"))

    def test_dot(self):
        assert parse_pattern(".") == AnyChar()

    def test_escape(self):
        assert parse_pattern(r"\*") == Lit("*")
        assert parse_pattern(r"\n") == Lit("\n")

    def test_dangling_operator(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("*a")

    def test_unbalanced_paren(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("(a")
        with pytest.raises(RegexSyntaxError):
            parse_pattern("a)")

    def test_unterminated_class(self):
        with pytest.raises(RegexSyntaxError):
            parse_pattern("[ab")

    def test_pattern_variables(self):
        node = parse_pattern("(?P<x>a(?P<y>b))|(?P<z>c)")
        assert pattern_variables(node) == frozenset({"x", "y", "z"})


class TestCompileLanguage:
    """Without variables, the spanner language must match Python's re."""

    CASES = [
        ("a", "ab"),
        ("ab", "ab"),
        ("a|b", "ab"),
        ("a*", "ab"),
        ("a+b?", "ab"),
        ("(ab|ba)*", "ab"),
        ("a{2,3}", "ab"),
        ("[ab]c", "abc"),
        ("[^a]b", "ab"),
        (".b.", "abc"),
        ("a(b|)a", "ab"),
    ]

    @pytest.mark.parametrize("pattern,alphabet", CASES)
    def test_language_matches_python_re(self, pattern, alphabet):
        nfa = compile_spanner(pattern, alphabet=alphabet)
        gold = re.compile(pattern)
        words = [""]
        for _ in range(4):
            words += [w + c for w in words for c in alphabet]
        for word in words:
            assert nfa.accepts(tuple(word)) == bool(gold.fullmatch(word)), word


class TestCompileSpanners:
    def test_variables_exposed(self):
        nfa = compile_spanner(r"(?P<x>a)(?P<y>b)", alphabet="ab")
        assert nfa.variables == frozenset({"x", "y"})

    def test_accepts_marked_word(self):
        nfa = compile_spanner(r"(?P<x>a+)b", alphabet="ab")
        word = m("aab", from_span_tuple(SpanTuple({"x": (1, 3)})))
        assert nfa.accepts(word)
        word_bad = m("aab", from_span_tuple(SpanTuple({"x": (1, 2)})))
        assert not nfa.accepts(word_bad)

    def test_optional_variable_undefined_branch(self):
        nfa = compile_spanner(r"(?P<x>a)|b", alphabet="ab")
        assert nfa.accepts(("b",))  # x undefined: plain word accepted
        word = m("a", from_span_tuple(SpanTuple({"x": (1, 2)})))
        assert nfa.accepts(word)

    def test_nested_variables_merge_markers(self):
        nfa = compile_spanner(r"(?P<x>(?P<y>a)b)", alphabet="ab")
        word = m("ab", from_span_tuple(SpanTuple({"x": (1, 3), "y": (1, 2)})))
        assert nfa.accepts(word)

    def test_empty_capture(self):
        nfa = compile_spanner(r"a(?P<x>b*)a", alphabet="ab")
        word = m("aa", from_span_tuple(SpanTuple({"x": (2, 2)})))
        assert nfa.accepts(word)

    def test_deterministic_flag(self):
        dfa = compile_spanner(r"(?P<x>a+)b", alphabet="ab", deterministic=True)
        assert dfa.is_deterministic

    def test_dot_requires_alphabet(self):
        with pytest.raises(RegexSyntaxError):
            compile_spanner(".")

    def test_negation_requires_alphabet(self):
        with pytest.raises(RegexSyntaxError):
            compile_spanner("[^a]")

    def test_no_epsilon_in_output(self):
        nfa = compile_spanner(r"(?P<x>a*)b?", alphabet="ab")
        assert not nfa.has_epsilon


class TestCompileVa:
    def test_va_accepts_single_marker_sequences(self):
        from repro.spanner.markers import cl, op

        va = compile_va(r"(?P<x>a)", alphabet="a")
        assert va.accepts((op("x"), "a", cl("x")))
        assert not va.accepts(("a",))

    def test_va_functionality(self):
        assert compile_va(r"(?P<x>a+)b").is_functional()
        assert not compile_va(r"(?P<x>a)|b").is_functional()
