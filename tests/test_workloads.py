"""Tests for repro.workloads (document generators + query suites)."""

import pytest

from repro.slp.repair import repair_slp
from repro.slp.stats import slp_stats
from repro.spanner.transform import is_well_formed
from repro.workloads.documents import (
    DNA_ALPHABET,
    LOG_ALPHABET,
    block_text,
    dna,
    random_text,
    server_log,
)
from repro.workloads.queries import (
    figure2_spanner,
    intro_spanner,
    key_value_spanner,
    marker_spanner,
    motif_pair_spanner,
    motif_spanner,
    pair_spanner,
)


class TestDocuments:
    def test_server_log_shape(self):
        log = server_log(10, seed=1)
        lines = log.strip("\n").split("\n")
        assert len(lines) == 10
        for line in lines:
            assert line.startswith("user=")
            assert " action=" in line and " status=" in line
        assert set(log) <= LOG_ALPHABET

    def test_server_log_deterministic(self):
        assert server_log(5, seed=3) == server_log(5, seed=3)
        assert server_log(5, seed=3) != server_log(5, seed=4)

    def test_server_log_is_compressible(self):
        log = server_log(400, seed=0)
        stats = slp_stats(repair_slp(log))
        assert stats["ratio"] > 3

    def test_dna_properties(self):
        seq = dna(1000, seed=7)
        assert len(seq) == 1000
        assert set(seq) <= DNA_ALPHABET

    def test_dna_repeats_make_it_compressible(self):
        repetitive = slp_stats(repair_slp(dna(4000, seed=1, repeat_bias=0.95)))
        random_like = slp_stats(repair_slp(random_text(4000, "acgt", seed=1)))
        assert repetitive["size"] < random_like["size"]

    def test_block_text_compressibility_dial(self):
        few = slp_stats(repair_slp(block_text(4096, distinct_blocks=2, seed=5)))
        many = slp_stats(repair_slp(block_text(4096, distinct_blocks=64, seed=5)))
        assert few["size"] < many["size"]

    def test_block_text_length(self):
        assert len(block_text(1000, 4, seed=2)) == 1000

    def test_random_text(self):
        t = random_text(256, "xyz", seed=9)
        assert len(t) == 256 and set(t) <= set("xyz")


class TestQueries:
    def test_all_queries_well_formed(self):
        for build in (
            figure2_spanner,
            intro_spanner,
            key_value_spanner,
            pair_spanner,
            motif_spanner,
            motif_pair_spanner,
            marker_spanner,
        ):
            assert is_well_formed(build()), build.__name__

    def test_figure2_is_dfa(self):
        assert figure2_spanner().is_deterministic

    def test_key_value_extracts_users(self):
        from repro.baselines.uncompressed import UncompressedEvaluator

        log = "user=alice action=read status=200\nuser=bob action=write status=404\n"
        ev = UncompressedEvaluator(key_value_spanner("user"), log)
        values = {t["value"].value(log) for t in ev.evaluate()}
        assert values == {"alice", "bob"}

    def test_pair_spanner_joint_extraction(self):
        from repro.baselines.uncompressed import UncompressedEvaluator

        log = "user=erin action=share status=500\n"
        ev = UncompressedEvaluator(pair_spanner(), log)
        pairs = {
            (t["user"].value(log), t["action"].value(log)) for t in ev.evaluate()
        }
        assert pairs == {("erin", "share")}

    def test_motif_spanner_counts_occurrences(self):
        from repro.baselines.uncompressed import UncompressedEvaluator

        seq = "ggtatagg" + "tata" + "cc"
        ev = UncompressedEvaluator(motif_spanner("tata"), seq)
        assert ev.count() == seq.count("tata") + (1 if "tatata" in seq else 0)

    def test_marker_spanner_selectivity(self):
        from repro.baselines.uncompressed import UncompressedEvaluator

        doc = "ababcababcab"
        ev = UncompressedEvaluator(marker_spanner("c", "abc"), doc)
        assert ev.count() == doc.count("c")
