"""End-to-end integration tests: realistic pipelines over compressed data."""

import itertools

import pytest

from repro.slp.balance import depth_bound
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.slp.families import power_slp, repeated_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.baselines.uncompressed import UncompressedEvaluator
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.workloads.documents import dna, server_log
from repro.workloads.queries import (
    key_value_spanner,
    motif_pair_spanner,
    motif_spanner,
    pair_spanner,
)


class TestLogPipeline:
    """Compress a server log with Re-Pair, extract key-value pairs."""

    @pytest.fixture(scope="class")
    def setup(self):
        log = server_log(120, seed=5)
        slp = repair_slp(log)
        return log, slp

    def test_compression_worked(self, setup):
        log, slp = setup
        assert slp.size < len(log) // 2

    def test_extraction_matches_uncompressed(self, setup):
        log, slp = setup
        spanner = key_value_spanner("user")
        compressed = CompressedSpannerEvaluator(spanner, slp)
        baseline = UncompressedEvaluator(spanner, log)
        assert compressed.evaluate() == baseline.evaluate()

    def test_extracted_values_are_user_names(self, setup):
        log, slp = setup
        spanner = key_value_spanner("user")
        ev = CompressedSpannerEvaluator(spanner, slp)
        values = {t["value"].value(log) for t in ev.enumerate()}
        assert values <= {"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
        assert len(values) > 1

    def test_multi_variable_extraction(self, setup):
        log, slp = setup
        spanner = pair_spanner()
        ev = CompressedSpannerEvaluator(spanner, slp)
        results = ev.evaluate()
        assert results
        for tup in results:
            assert tup["user"].value(log).isalpha()
            assert tup["action"].value(log).isalpha()
        assert len(results) == log.count("\n")


class TestDnaPipeline:
    """Compress DNA with LZ, hunt motifs."""

    @pytest.fixture(scope="class")
    def setup(self):
        seq = dna(3000, seed=11, repeat_bias=0.9)
        slp = lz_slp(seq)
        return seq, slp

    def test_motif_counts_match(self, setup):
        seq, slp = setup
        spanner = motif_spanner("tata")
        compressed = CompressedSpannerEvaluator(spanner, slp)
        baseline = UncompressedEvaluator(spanner, seq)
        assert compressed.count() == baseline.count()

    def test_motif_positions_are_real(self, setup):
        seq, slp = setup
        spanner = motif_spanner("acgt")
        ev = CompressedSpannerEvaluator(spanner, slp)
        for tup in itertools.islice(ev.enumerate(), 25):
            assert tup["m"].value(seq) == "acgt"

    def test_motif_pairs(self, setup):
        seq, slp = setup
        spanner = motif_pair_spanner("tat", "gcg")
        compressed = CompressedSpannerEvaluator(spanner, slp)
        baseline = UncompressedEvaluator(spanner, seq)
        assert compressed.is_nonempty() == baseline.is_nonempty()
        # spot-check a streamed prefix against the baseline relation
        expected = baseline.evaluate()
        for tup in itertools.islice(compressed.enumerate(), 50):
            assert tup in expected


class TestExponentialScale:
    """Documents too large to ever decompress (d ≈ 10^12)."""

    def test_all_tasks_on_terabyte_scale_doc(self):
        slp = power_slp("ab", 40)  # d = 2^41 ≈ 2.2 * 10^12
        spanner = compile_spanner(r"(a|b)*(?P<x>ba)(a|b)*", alphabet="ab")
        ev = CompressedSpannerEvaluator(spanner, slp)
        assert ev.is_nonempty()
        assert ev.model_check(SpanTuple({"x": Span(2, 4)}))
        assert not ev.model_check(SpanTuple({"x": Span(3, 5)}))
        sample = list(itertools.islice(ev.enumerate(), 8))
        assert len(sample) == len(set(sample)) == 8

    def test_depth_stays_logarithmic(self):
        slp = repeated_slp("abc", 10**9)
        assert slp.depth() <= depth_bound(slp.length())


class TestEquivalenceOfCompressors:
    """The same document through different compressors gives the same answers."""

    def test_relation_invariant_under_compressor(self):
        from repro.slp.construct import balanced_slp, bisection_slp

        doc = server_log(40, seed=2)
        spanner = key_value_spanner("action")
        results = set()
        for build in (balanced_slp, bisection_slp, repair_slp, lz_slp):
            ev = CompressedSpannerEvaluator(spanner, build(doc))
            results.add(ev.evaluate())
        assert len(results) == 1
