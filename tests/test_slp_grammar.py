"""Unit tests for repro.slp.grammar (SLP class, validation, normal form)."""

import pytest

from repro.errors import GrammarError
from repro.slp.derive import text
from repro.slp.grammar import SLP


def tiny_slp():
    return SLP(
        inner_rules={"S": ("A", "Tb"), "A": ("Ta", "Ta")},
        leaf_rules={"Ta": "a", "Tb": "b"},
        start="S",
    )


class TestConstruction:
    def test_basic(self):
        slp = tiny_slp()
        assert text(slp) == "aab"

    def test_single_leaf_document(self):
        slp = SLP({}, {"T": "x"}, "T")
        assert text(slp) == "x"
        assert slp.length() == 1
        assert slp.depth() == 1

    def test_empty_grammar_rejected(self):
        with pytest.raises(GrammarError):
            SLP({}, {}, "S")

    def test_missing_start_rejected(self):
        with pytest.raises(GrammarError):
            SLP({"S": ("A", "A")}, {"A": "a"}, "X")

    def test_undefined_reference_rejected(self):
        with pytest.raises(GrammarError):
            SLP({"S": ("A", "B")}, {"A": "a"}, "S")

    def test_cycle_rejected(self):
        with pytest.raises(GrammarError):
            SLP({"S": ("S", "A")}, {"A": "a"}, "S")

    def test_indirect_cycle_rejected(self):
        with pytest.raises(GrammarError):
            SLP({"S": ("B", "A"), "B": ("S", "A")}, {"A": "a"}, "S")

    def test_duplicate_terminal_rejected(self):
        # normal form: one leaf nonterminal per terminal
        with pytest.raises(GrammarError):
            SLP({"S": ("T1", "T2")}, {"T1": "a", "T2": "a"}, "S")

    def test_name_used_twice_rejected(self):
        with pytest.raises(GrammarError):
            SLP({"A": ("A", "A")}, {"A": "a"}, "A")


class TestMeasures:
    def test_length_per_nonterminal(self):
        slp = tiny_slp()
        assert slp.length("Ta") == 1
        assert slp.length("A") == 2
        assert slp.length("S") == 3
        assert slp.length() == 3

    def test_depth_per_nonterminal(self):
        slp = tiny_slp()
        assert slp.depth("Ta") == 1
        assert slp.depth("A") == 2
        assert slp.depth("S") == 3

    def test_size_definition(self):
        # size(S) = |N| + sum |rhs| = 4 + (2 + 2 + 1 + 1)
        slp = tiny_slp()
        assert slp.size == 4 + 2 * 2 + 2

    def test_counts(self):
        slp = tiny_slp()
        assert slp.num_nonterminals == 4
        assert slp.num_inner == 2
        assert slp.num_leaves == 2

    def test_alphabet(self):
        assert tiny_slp().alphabet == frozenset("ab")


class TestAccessors:
    def test_is_leaf(self):
        slp = tiny_slp()
        assert slp.is_leaf("Ta")
        assert not slp.is_leaf("S")

    def test_terminal_and_leaf_for(self):
        slp = tiny_slp()
        assert slp.terminal("Ta") == "a"
        assert slp.leaf_for("a") == "Ta"
        assert slp.leaf_for("z") is None

    def test_children(self):
        assert tiny_slp().children("S") == ("A", "Tb")

    def test_topological_order_children_first(self):
        slp = tiny_slp()
        order = slp.topological_order()
        assert order.index("Ta") < order.index("A")
        assert order.index("A") < order.index("S")
        assert order.index("Tb") < order.index("S")

    def test_repr_mentions_measures(self):
        r = repr(tiny_slp())
        assert "length=3" in r and "depth=3" in r


class TestStructuralOps:
    def test_reachable(self):
        slp = SLP(
            {"S": ("Ta", "Tb"), "U": ("Ta", "Ta")},
            {"Ta": "a", "Tb": "b"},
            "S",
        )
        assert "U" not in slp.reachable()
        assert slp.reachable() == frozenset({"S", "Ta", "Tb"})

    def test_trim_removes_unreachable(self):
        slp = SLP(
            {"S": ("Ta", "Tb"), "U": ("Ta", "Ta")},
            {"Ta": "a", "Tb": "b"},
            "S",
        )
        trimmed = slp.trim()
        assert trimmed.num_inner == 1
        assert text(trimmed) == "ab"

    def test_restrict_gives_sub_document(self):
        slp = tiny_slp()
        sub = slp.restrict("A")
        assert text(sub) == "aa"

    def test_canonical_is_stable_under_renaming(self):
        slp = tiny_slp()
        renamed = SLP(
            inner_rules={"Z": ("Q", "Lb"), "Q": ("La", "La")},
            leaf_rules={"La": "a", "Lb": "b"},
            start="Z",
        )
        assert slp.same_structure(renamed)

    def test_same_structure_fails_on_different_shape(self):
        other = SLP(
            {"S": ("Ta", "A"), "A": ("Ta", "Tb")},
            {"Ta": "a", "Tb": "b"},
            "S",
        )
        assert not tiny_slp().same_structure(other)


class TestFromGeneralRules:
    def test_example_4_1(self):
        slp = SLP.from_general_rules(
            {"S0": ["A", "b", "a", "A", "B", "b"], "A": ["B", "a", "B"], "B": list("baab")},
            start="S0",
        )
        assert text(slp) == "baababaabbabaababaabbaabb"

    def test_unit_rules_resolved(self):
        slp = SLP.from_general_rules({"S": ["A", "A"], "A": ["B"], "B": ["a", "b"]}, "S")
        assert text(slp) == "abab"

    def test_unit_rule_to_terminal(self):
        slp = SLP.from_general_rules({"S": ["A", "b"], "A": ["a"]}, "S")
        assert text(slp) == "ab"

    def test_unit_cycle_rejected(self):
        with pytest.raises(GrammarError):
            SLP.from_general_rules({"S": ["A", "A"], "A": ["B"], "B": ["A"]}, "S")

    def test_empty_rhs_rejected(self):
        with pytest.raises(GrammarError):
            SLP.from_general_rules({"S": []}, "S")

    def test_missing_start_rejected(self):
        with pytest.raises(GrammarError):
            SLP.from_general_rules({"S": ["a"]}, "X")

    def test_terminals_shared(self):
        slp = SLP.from_general_rules({"S": list("aaaa")}, "S")
        assert slp.num_leaves == 1

    def test_result_is_binary(self):
        slp = SLP.from_general_rules({"S": list("abcdefg")}, "S")
        for name in slp.inner_rules:
            assert len(slp.children(name)) == 2
        assert text(slp) == "abcdefg"
