"""Tests for repro.baselines (naive reference + uncompressed product DAG)."""

import random

import pytest

from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.baselines.naive import (
    candidate_tuples,
    naive_evaluate,
    naive_is_nonempty,
    naive_model_check,
)
from repro.baselines.uncompressed import UncompressedEvaluator

from tests.conftest import WELLFORMED_PATTERNS, random_doc


class TestNaive:
    def test_candidate_count(self):
        # one variable, doc length 2: 1 + |Spans| = 1 + 6 options
        assert sum(1 for _ in candidate_tuples(["x"], 2)) == 7

    def test_evaluate_simple(self):
        nfa = compile_spanner(r"(?P<x>a)b", alphabet="ab")
        assert naive_evaluate(nfa, "ab") == frozenset({SpanTuple({"x": Span(1, 2)})})

    def test_model_check_invalid_tuple(self):
        nfa = compile_spanner(r"(?P<x>a)", alphabet="a")
        assert not naive_model_check(nfa, "a", SpanTuple({"x": Span(1, 9)}))

    def test_is_nonempty(self):
        nfa = compile_spanner(r"(?P<x>ab)", alphabet="ab")
        assert naive_is_nonempty(nfa, "ab")
        assert not naive_is_nonempty(nfa, "ba")


class TestUncompressed:
    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS)
    def test_matches_naive(self, pattern, alphabet, compiled_patterns):
        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) & 0xFFFFF)
        for _ in range(5):
            doc = random_doc(rng, alphabet, 7)
            ev = UncompressedEvaluator(nfa, doc)
            ref = naive_evaluate(nfa, doc)
            assert ev.evaluate() == ref, doc
            assert ev.is_nonempty() == bool(ref), doc
            assert ev.count() == len(ref), doc
            for tup in list(ref)[:3]:
                assert ev.model_check(tup)

    def test_empty_document(self):
        nfa = compile_spanner(r"(?P<x>a*)", alphabet="a")
        ev = UncompressedEvaluator(nfa, "")
        assert ev.evaluate() == frozenset({SpanTuple({"x": Span(1, 1)})})

    def test_no_duplicates_with_dfa(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        ev = UncompressedEvaluator(nfa, "ababab")
        results = list(ev.enumerate())
        assert len(results) == len(set(results)) == 3

    def test_empty_relation(self):
        nfa = compile_spanner(r"(?P<x>aa)", alphabet="ab")
        ev = UncompressedEvaluator(nfa, "ab")
        assert ev.evaluate() == frozenset()
        assert not ev.is_nonempty()
        assert ev.count() == 0

    def test_build_is_cached(self):
        nfa = compile_spanner(r"(?P<x>a)", alphabet="a")
        ev = UncompressedEvaluator(nfa, "a")
        assert ev.build() is ev.build()

    def test_graph_is_trimmed(self):
        """Dead-end branches must be pruned by the backward pass."""
        nfa = compile_spanner(r"(?P<x>a)b|aa", alphabet="ab")
        ev = UncompressedEvaluator(nfa, "ab")
        graph = ev.build()
        # all nodes in the graph lie on accepting paths; spot check sizes
        assert graph
        assert ev.evaluate() == frozenset({SpanTuple({"x": Span(1, 2)})})

    def test_repr(self):
        nfa = compile_spanner(r"(?P<x>a)", alphabet="a")
        assert "doc_length=1" in repr(UncompressedEvaluator(nfa, "a"))

    def test_tail_spanning_nonemptiness(self):
        """is_nonempty must see marker sets just before acceptance."""
        nfa = compile_spanner(r"a(?P<x>b*)", alphabet="ab")
        ev = UncompressedEvaluator(nfa, "a")
        assert ev.is_nonempty()
        assert ev.evaluate() == frozenset({SpanTuple({"x": Span(2, 2)})})
