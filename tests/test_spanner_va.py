"""Tests for repro.spanner.va (variable-set automata + extended conversion)."""

import pytest

from repro.errors import AutomatonError
from repro.spanner.automaton import EPSILON
from repro.spanner.markers import cl, op
from repro.spanner.va import VSetAutomaton, to_extended_nfa


def manual_va():
    """0 -⊿x-> 1 -a-> 2 -◁x-> 3 (accepting); markers one at a time."""
    return VSetAutomaton(
        4,
        {
            0: {op("x"): frozenset({1})},
            1: {"a": frozenset({2})},
            2: {cl("x"): frozenset({3})},
        },
        [3],
    )


class TestVSetAutomaton:
    def test_accepts_sequences(self):
        va = manual_va()
        assert va.accepts((op("x"), "a", cl("x")))
        assert not va.accepts(("a",))

    def test_variables(self):
        assert manual_va().variables == frozenset({"x"})

    def test_state_range_validation(self):
        with pytest.raises(AutomatonError):
            VSetAutomaton(1, {0: {"a": frozenset({4})}}, [])

    def test_arcs(self):
        assert len(list(manual_va().arcs())) == 3

    def test_is_functional_true(self):
        assert manual_va().is_functional()

    def test_is_functional_false_when_optional(self):
        va = VSetAutomaton(
            2,
            {0: {op("x"): frozenset({1}), "a": frozenset({1})}},
            [1],
        )
        # accepting with x never opened on the 'a' path
        assert not va.is_functional()

    def test_is_functional_false_when_unclosed(self):
        va = VSetAutomaton(2, {0: {op("x"): frozenset({1})}}, [1])
        assert not va.is_functional()


class TestExtendedConversion:
    def test_single_markers_become_sets(self):
        nfa = to_extended_nfa(manual_va())
        word = (frozenset({op("x")}), "a", frozenset({cl("x")}))
        assert nfa.accepts(word)

    def test_consecutive_markers_merge(self):
        """⊿x then ◁x with no char between them merge into one set symbol."""
        va = VSetAutomaton(
            4,
            {
                0: {"a": frozenset({1})},
                1: {op("x"): frozenset({2})},
                2: {cl("x"): frozenset({3})},
            },
            [3],
        )
        nfa = to_extended_nfa(va)
        assert nfa.accepts(("a", frozenset({op("x"), cl("x")})))

    def test_epsilon_within_marker_block(self):
        va = VSetAutomaton(
            5,
            {
                0: {op("x"): frozenset({1})},
                1: {EPSILON: frozenset({2})},
                2: {cl("x"): frozenset({3})},
                3: {"a": frozenset({4})},
            },
            [4],
        )
        nfa = to_extended_nfa(va)
        assert nfa.accepts((frozenset({op("x"), cl("x")}), "a"))

    def test_repeated_marker_in_block_dropped(self):
        """A path reading ⊿x twice in one block is not a valid set symbol."""
        va = VSetAutomaton(
            4,
            {
                0: {op("x"): frozenset({1})},
                1: {op("x"): frozenset({2})},
                2: {"a": frozenset({3})},
            },
            [3],
        )
        nfa = to_extended_nfa(va)
        # no two-marker path is legal, so no marker-set arcs reach 'a'
        assert not nfa.accepts((frozenset({op("x")}), "a"))

    def test_marker_cycle_back_to_source(self):
        va = VSetAutomaton(
            2,
            {
                0: {op("x"): frozenset({1}), "a": frozenset({0})},
                1: {cl("x"): frozenset({0})},
            },
            [0],
        )
        nfa = to_extended_nfa(va)
        assert nfa.accepts((frozenset({op("x"), cl("x")}),))
        assert nfa.accepts(("a", frozenset({op("x"), cl("x")})))

    def test_result_has_no_epsilon_and_is_trim(self):
        nfa = to_extended_nfa(manual_va())
        assert not nfa.has_epsilon
