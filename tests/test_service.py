"""Tests for the service daemon: protocol, server, client, fleet.

The daemon tests run a real :class:`~repro.service.server.SpannerService`
on a background thread with a real unix socket and real fleet worker
processes — the process/socket boundaries *are* the subject.  Workloads
stay tiny so the suite remains fast; the randomized bit-identity
cross-check lives in the differential harness.
"""

import os
import socket as socket_module

import pytest

from repro.engine import Engine
from repro.engine.spec import SpannerSpec
from repro.service import protocol
from repro.service.client import ServiceClient, wait_ready
from repro.service.protocol import ProtocolError, ServiceError
from repro.service.server import ServiceThread, SpannerService
from repro.session import SessionConfig, connect
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple

TIMEOUT = 120.0


def ab_spanner(pattern=r".*(?P<x>a+)b.*"):
    return compile_spanner(pattern, alphabet="ab")


# -- the wire protocol --------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip_over_a_socketpair(self):
        left, right = socket_module.socketpair()
        try:
            message = {"id": 7, "op": "ping", "text": "héllo", "n": [1, 2]}
            protocol.send_frame(left, message)
            assert protocol.recv_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none_mid_frame_raises(self):
        left, right = socket_module.socketpair()
        left.close()
        try:
            assert protocol.recv_frame(right) is None
        finally:
            right.close()
        left, right = socket_module.socketpair()
        try:
            left.sendall(protocol.pack_frame({"id": 1})[:3])  # truncated header
            left.close()
            with pytest.raises(ProtocolError, match="mid-"):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_oversized_header_is_rejected(self):
        left, right = socket_module.socketpair()
        try:
            left.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="cap"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_body_is_rejected(self):
        left, right = socket_module.socketpair()
        try:
            body = b"[1,2,3]"
            left.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError, match="JSON object"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_span_tuple_codec_is_canonical(self):
        tup = SpanTuple({"y": Span(3, 5), "x": Span(1, 2)})
        payload = protocol.encode_span_tuple(tup)
        assert payload == [["x", 1, 2], ["y", 3, 5]]  # variable-sorted
        assert protocol.decode_span_tuple(payload) == tup

    @pytest.mark.parametrize("task", ["evaluate", "enumerate", "count", "nonempty"])
    def test_result_codec_round_trips_every_task(self, task):
        engine = Engine()
        spanner, slp = ab_spanner(), balanced_slp("aababb")
        if task == "evaluate":
            value = engine.evaluate(spanner, slp)
        elif task == "enumerate":
            value = list(engine.enumerate(spanner, slp))
        elif task == "count":
            value = engine.count(spanner, slp)
        else:
            value = engine.is_nonempty(spanner, slp)
        decoded = protocol.decode_result(
            task, protocol.encode_result(task, value)
        )
        assert decoded == value
        if task == "enumerate":
            # order is part of the contract, not just set equality
            assert [str(t) for t in decoded] == [str(t) for t in value]

    def test_spanner_codec_pattern_and_pickle(self):
        pattern_spec = protocol.decode_spanner(
            protocol.encode_spanner(
                SpannerSpec(pattern=r"(?P<x>a+)b", alphabet="ab")
            )
        )
        assert pattern_spec.pattern == r"(?P<x>a+)b"
        nfa = ab_spanner()
        payload = protocol.encode_spanner(nfa)
        assert "pickle" in payload  # no pattern available: pickled NFA
        decoded = protocol.decode_spanner(payload)
        assert decoded.resolve().structural_digest() == nfa.structural_digest()

    def test_bad_spanner_payload_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_spanner({"neither": 1})

    def test_remote_error_reraises_with_traceback(self):
        with pytest.raises(ServiceError, match="remote traceback") as info:
            protocol.raise_remote_error(
                {"type": "ValueError", "message": "boom", "traceback": "tb text"}
            )
        assert info.value.remote_type == "ValueError"


# -- the daemon ---------------------------------------------------------------


@pytest.fixture
def corpus(tmp_path):
    docs = ["aabab" * 4, "bbbb", "abab" * 6]
    paths = []
    for k, text in enumerate(docs):
        path = str(tmp_path / f"doc{k}.slpb")
        slp_io.save_binary(balanced_slp(text), path)
        paths.append(path)
    return docs, paths


@pytest.fixture
def daemon(service_socket, tmp_path):
    config = SessionConfig(jobs=2, store_dir=str(tmp_path / "prep"))
    with ServiceThread(config, service_socket) as svc:
        yield svc


class TestDaemon:
    def test_ping_reports_fleet_and_config(self, daemon):
        info = wait_ready(daemon.socket_path, timeout=TIMEOUT)
        assert info["protocol"] == protocol.PROTOCOL_VERSION
        assert info["pid"] == os.getpid()  # in-thread daemon
        assert info["fleet"]["jobs"] == 2
        assert info["fleet"]["alive"] == 2
        assert info["config"]["store_dir"] is not None

    def test_grid_matches_serial_engine(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        slps = [balanced_slp(d) for d in docs]
        serial = Engine().evaluate_corpus(spanner, slps)
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            got = client.run_grid(paths, [spanner], task="evaluate")
        assert got == serial

    def test_enumerate_preserves_canonical_order(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        serial = [
            list(Engine().enumerate(spanner, balanced_slp(d))) for d in docs
        ]
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            got = client.run_grid(paths, [spanner], task="enumerate")
        assert got == serial

    def test_fleet_persists_across_requests(self, daemon, corpus):
        _, paths = corpus
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            before = client.ping()["fleet"]["pids"]
            client.run_grid(paths, [ab_spanner()], task="count")
            client.run_grid(paths, [ab_spanner(r"(?P<x>b+)a")], task="count")
            after = client.ping()["fleet"]["pids"]
        assert before == after  # same worker processes served both jobs

    def test_errors_travel_and_connection_survives(self, daemon, corpus):
        _, paths = corpus
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            # one good request first: the fleet is warm from here on
            client.run_grid(paths[:1], [ab_spanner()], task="count")
            warm_pids = client.ping()["fleet"]["pids"]
            # unknown op
            with pytest.raises(ServiceError, match="unknown op"):
                client.request("frobnicate")
            # bad task name fails TaskSpec validation server-side
            with pytest.raises(ServiceError, match="unknown batch task"):
                client.run_grid(paths, [ab_spanner()], task="bogus")
            # a missing document is rejected before fan-out
            with pytest.raises(ServiceError, match="gone.slpb"):
                client.run_grid(
                    [paths[0], str(paths[0]) + "gone.slpb"],
                    [ab_spanner()],
                    task="count",
                )
            # a malformed limit is rejected before fan-out too
            with pytest.raises(ServiceError, match="'limit' must be"):
                client.request(
                    "run",
                    documents=list(paths[:1]),
                    spanners=[protocol.encode_spanner(ab_spanner())],
                    task="enumerate",
                    limit="10",
                )
            # an uncompilable pattern raises its real compile error
            with pytest.raises(ServiceError) as info:
                client.run_grid(
                    paths[:1],
                    [SpannerSpec(pattern="(?P<x>[", alphabet="ab")],
                    task="count",
                )
            assert info.value.remote_type == "RegexSyntaxError"
            # ... the connection keeps working, and none of those bad
            # requests cost the daemon its warm fleet
            assert client.ping()["fleet"]["pids"] == warm_pids
            assert client.run_grid(paths[:1], [ab_spanner()], task="count")

    def test_check_op(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        expected = Engine().evaluate(spanner, balanced_slp(docs[0]))
        hit = sorted(expected, key=str)[0]
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            assert client.check(paths[0], spanner, hit) is True
            assert client.check(
                paths[0], spanner, SpanTuple({"x": Span(1, 1)})
            ) is (SpanTuple({"x": Span(1, 1)}) in expected)

    def test_session_facade_over_the_daemon(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        serial = Engine().count_corpus(spanner, [balanced_slp(d) for d in docs])
        with connect(daemon.socket_path, timeout=TIMEOUT) as session:
            assert session.backend == "daemon"
            assert session.corpus(spanner, paths, task="count") == serial
            # in-memory SLPs are spilled client-side and travel by path
            assert session.count(spanner, balanced_slp(docs[0])) == serial[0]
            info = session.stats()
            assert info["backend"] == "daemon" and info["fleet"]["alive"] == 2
            with pytest.raises(NotImplementedError, match="in-process"):
                session.ranked(spanner, paths[0])

    def test_client_shutdown_op_stops_the_daemon(self, service_socket, tmp_path):
        svc = ServiceThread(SessionConfig(jobs=1), service_socket).start()
        with ServiceClient(service_socket, timeout=TIMEOUT) as client:
            assert client.shutdown() == {"stopping": True}
        svc.stop(timeout=TIMEOUT)
        assert not os.path.exists(service_socket)
        import multiprocessing

        leftovers = [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("repro-parallel")
        ]
        assert not leftovers, leftovers


class TestRegressions:
    """Failing-before/passing-after tests for the PR 7 service bugfixes."""

    def test_shutdown_is_not_blocked_by_an_idle_connection(
        self, service_socket
    ):
        """An idle client holding its connection open must not hang stop().

        On Python >= 3.12 ``Server.wait_closed()`` waits for every open
        connection handler; before the fix the handler of an idle client
        sat in ``read_frame`` forever and ``aclose()`` never returned.
        The fix tracks connection tasks and cancels them at shutdown.
        (On <= 3.11 ``wait_closed()`` returns early, so this regression
        only bites the newer interpreters CI also runs.)
        """
        import time

        svc = ServiceThread(SessionConfig(jobs=1), service_socket).start()
        idle = ServiceClient(service_socket, timeout=TIMEOUT)
        try:
            idle.ping()  # connection is now established ... and parked
            with ServiceClient(service_socket, timeout=TIMEOUT) as client:
                assert client.shutdown() == {"stopping": True}
            started = time.monotonic()
            svc.stop(timeout=TIMEOUT)
            elapsed = time.monotonic() - started
            # well under shutdown_grace: the grace wait only applies to
            # in-flight requests, of which there are none
            assert elapsed < 20.0, f"shutdown took {elapsed:.1f}s"
            assert not os.path.exists(service_socket)
        finally:
            idle.close()

    def test_ping_stays_consistent_under_fleet_churn(
        self, service_socket, tmp_path, monkeypatch
    ):
        """``ping`` is served from a lock-protected scheduler snapshot.

        Before the fix it walked live fleet worker state on the event
        loop while the scheduler thread was mutating it — during a
        crash/respawn window a ping could observe a half-dead fleet
        (pids of reaped workers, alive counts out of step).  Hammer
        ping while a crashing job churns workers: every response must
        be internally consistent.
        """
        import threading

        from repro.service.server import TEST_FAULTS_ENV

        monkeypatch.setenv(TEST_FAULTS_ENV, "1")
        paths = []
        for k in range(4):
            path = str(tmp_path / f"churn{k}.slpb")
            slp_io.save_binary(balanced_slp("aabab" * 3 + "ab" * (k + 1)), path)
            paths.append(path)
        config = SessionConfig(jobs=2, store_dir=str(tmp_path / "prep"))
        with ServiceThread(config, service_socket) as svc:
            stop = threading.Event()

            def churn():
                k = 0
                while not stop.is_set():
                    token = f"{tmp_path / f'crash{k}'}:1"  # crash once, retry
                    with ServiceClient(svc.socket_path, timeout=TIMEOUT) as c:
                        c.run_grid(
                            paths, [ab_spanner()], task="count",
                            _test_params={"_fault_tokens": {0: token}},
                        )
                    k += 1

            churner = threading.Thread(target=churn, daemon=True)
            churner.start()
            try:
                with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                    for _ in range(50):
                        info = client.ping()
                        fleet = info["fleet"]
                        assert len(fleet["pids"]) == fleet["alive"] <= fleet["jobs"]
                        sched = info["scheduler"]
                        assert sched["active_jobs"] >= 0
                        assert sched["jobs_completed"] <= sched["jobs_admitted"]
                        assert sched["inflight_shards"] >= 0
            finally:
                stop.set()
                churner.join(TIMEOUT)

    def test_timeout_closes_the_socket_and_the_client_recovers(
        self, service_socket, tmp_path, monkeypatch
    ):
        """A request that times out must drop the connection.

        The response to the timed-out request is still in flight; if the
        client reused the socket, that stale frame would be misparsed as
        the reply to the *next* request (protocol desync).
        """
        from repro.service.server import TEST_FAULTS_ENV

        monkeypatch.setenv(TEST_FAULTS_ENV, "1")
        path = str(tmp_path / "slow.slpb")
        slp_io.save_binary(balanced_slp("aabab" * 4), path)
        config = SessionConfig(jobs=1, store_dir=str(tmp_path / "prep"))
        with ServiceThread(config, service_socket) as svc:
            client = ServiceClient(svc.socket_path, timeout=2.0)
            try:
                with pytest.raises(ServiceError, match="transport failure"):
                    client.run_grid(
                        [path], [ab_spanner()], task="count",
                        _test_params={"_shard_sleep": 6.0},
                    )
                assert client._sock is None  # the fix: socket dropped
                # the late response went to the dead socket, not to us:
                # the reconnected client gets clean, matching frames
                client.timeout = TIMEOUT
                assert client.ping()["fleet"]["jobs"] == 1
                assert client.run_grid(
                    [path], [ab_spanner()], task="count"
                )
            finally:
                client.close()

    def test_interrupt_mid_receive_closes_the_socket(
        self, service_socket, monkeypatch
    ):
        """Satellite-3 proper: *any* exception mid round-trip desyncs.

        ``KeyboardInterrupt`` (or ``MemoryError``) raised while the
        client waits in ``recv_frame`` is not an ``OSError``; before the
        fix the half-used socket stayed cached and the unread response
        poisoned the next request's framing.  The client must close on
        ``BaseException`` too.
        """
        with ServiceThread(SessionConfig(jobs=1), service_socket) as svc:
            client = ServiceClient(svc.socket_path, timeout=TIMEOUT)
            try:
                client.ping()  # warm connection
                real = protocol.recv_frame
                fired = []

                def interrupted(sock):
                    if not fired:
                        fired.append(True)
                        raise KeyboardInterrupt
                    return real(sock)

                monkeypatch.setattr(protocol, "recv_frame", interrupted)
                with pytest.raises(KeyboardInterrupt):
                    client.ping()
                assert client._sock is None  # the fix
                # the abandoned pong died with the old socket; this
                # fresh round trip must not see it
                assert client.ping()["fleet"]["alive"] == 1
            finally:
                client.close()


class TestLifecycle:
    def test_stale_socket_file_is_reclaimed(self, service_socket):
        # A dead daemon leaves its socket file behind; binding a fresh
        # one must reclaim it instead of failing with EADDRINUSE.
        sock = socket_module.socket(socket_module.AF_UNIX)
        sock.bind(service_socket)
        sock.close()  # bound then closed: the path exists, nobody listens
        with ServiceThread(SessionConfig(jobs=1), service_socket) as svc:
            assert wait_ready(svc.socket_path, timeout=TIMEOUT)["fleet"]["alive"] == 1

    def test_live_socket_is_refused(self, service_socket):
        with ServiceThread(SessionConfig(jobs=1), service_socket):
            with pytest.raises(ServiceError, match="already listening"):
                SpannerService._reclaim_stale_socket(service_socket)

    def test_socket_is_owner_only(self, service_socket):
        with ServiceThread(SessionConfig(jobs=1), service_socket):
            assert os.stat(service_socket).st_mode & 0o777 == 0o600

    def test_wait_ready_times_out_cleanly(self, service_socket):
        with pytest.raises(ServiceError, match="became ready"):
            wait_ready(service_socket, timeout=0.5, interval=0.1)

    def test_client_connect_error_is_actionable(self, service_socket):
        client = ServiceClient(service_socket, timeout=1.0)
        with pytest.raises(ServiceError, match="serve"):
            client.ping()
