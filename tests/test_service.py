"""Tests for the service daemon: protocol, server, client, fleet.

The daemon tests run a real :class:`~repro.service.server.SpannerService`
on a background thread with a real unix socket and real fleet worker
processes — the process/socket boundaries *are* the subject.  Workloads
stay tiny so the suite remains fast; the randomized bit-identity
cross-check lives in the differential harness.
"""

import os
import socket as socket_module

import pytest

from repro.engine import Engine
from repro.engine.spec import SpannerSpec
from repro.service import protocol
from repro.service.client import ServiceClient, wait_ready
from repro.service.protocol import ProtocolError, ServiceError
from repro.service.server import ServiceThread, SpannerService
from repro.session import SessionConfig, connect
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple

TIMEOUT = 120.0


def ab_spanner(pattern=r".*(?P<x>a+)b.*"):
    return compile_spanner(pattern, alphabet="ab")


# -- the wire protocol --------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip_over_a_socketpair(self):
        left, right = socket_module.socketpair()
        try:
            message = {"id": 7, "op": "ping", "text": "héllo", "n": [1, 2]}
            protocol.send_frame(left, message)
            assert protocol.recv_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_clean_eof_is_none_mid_frame_raises(self):
        left, right = socket_module.socketpair()
        left.close()
        try:
            assert protocol.recv_frame(right) is None
        finally:
            right.close()
        left, right = socket_module.socketpair()
        try:
            left.sendall(protocol.pack_frame({"id": 1})[:3])  # truncated header
            left.close()
            with pytest.raises(ProtocolError, match="mid-"):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_oversized_header_is_rejected(self):
        left, right = socket_module.socketpair()
        try:
            left.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="cap"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_body_is_rejected(self):
        left, right = socket_module.socketpair()
        try:
            body = b"[1,2,3]"
            left.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(ProtocolError, match="JSON object"):
                protocol.recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_span_tuple_codec_is_canonical(self):
        tup = SpanTuple({"y": Span(3, 5), "x": Span(1, 2)})
        payload = protocol.encode_span_tuple(tup)
        assert payload == [["x", 1, 2], ["y", 3, 5]]  # variable-sorted
        assert protocol.decode_span_tuple(payload) == tup

    @pytest.mark.parametrize("task", ["evaluate", "enumerate", "count", "nonempty"])
    def test_result_codec_round_trips_every_task(self, task):
        engine = Engine()
        spanner, slp = ab_spanner(), balanced_slp("aababb")
        if task == "evaluate":
            value = engine.evaluate(spanner, slp)
        elif task == "enumerate":
            value = list(engine.enumerate(spanner, slp))
        elif task == "count":
            value = engine.count(spanner, slp)
        else:
            value = engine.is_nonempty(spanner, slp)
        decoded = protocol.decode_result(
            task, protocol.encode_result(task, value)
        )
        assert decoded == value
        if task == "enumerate":
            # order is part of the contract, not just set equality
            assert [str(t) for t in decoded] == [str(t) for t in value]

    def test_spanner_codec_pattern_and_pickle(self):
        pattern_spec = protocol.decode_spanner(
            protocol.encode_spanner(
                SpannerSpec(pattern=r"(?P<x>a+)b", alphabet="ab")
            )
        )
        assert pattern_spec.pattern == r"(?P<x>a+)b"
        nfa = ab_spanner()
        payload = protocol.encode_spanner(nfa)
        assert "pickle" in payload  # no pattern available: pickled NFA
        decoded = protocol.decode_spanner(payload)
        assert decoded.resolve().structural_digest() == nfa.structural_digest()

    def test_bad_spanner_payload_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_spanner({"neither": 1})

    def test_remote_error_reraises_with_traceback(self):
        with pytest.raises(ServiceError, match="remote traceback") as info:
            protocol.raise_remote_error(
                {"type": "ValueError", "message": "boom", "traceback": "tb text"}
            )
        assert info.value.remote_type == "ValueError"


# -- the daemon ---------------------------------------------------------------


@pytest.fixture
def corpus(tmp_path):
    docs = ["aabab" * 4, "bbbb", "abab" * 6]
    paths = []
    for k, text in enumerate(docs):
        path = str(tmp_path / f"doc{k}.slpb")
        slp_io.save_binary(balanced_slp(text), path)
        paths.append(path)
    return docs, paths


@pytest.fixture
def daemon(service_socket, tmp_path):
    config = SessionConfig(jobs=2, store_dir=str(tmp_path / "prep"))
    with ServiceThread(config, service_socket) as svc:
        yield svc


class TestDaemon:
    def test_ping_reports_fleet_and_config(self, daemon):
        info = wait_ready(daemon.socket_path, timeout=TIMEOUT)
        assert info["protocol"] == protocol.PROTOCOL_VERSION
        assert info["pid"] == os.getpid()  # in-thread daemon
        assert info["fleet"]["jobs"] == 2
        assert info["fleet"]["alive"] == 2
        assert info["config"]["store_dir"] is not None

    def test_grid_matches_serial_engine(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        slps = [balanced_slp(d) for d in docs]
        serial = Engine().evaluate_corpus(spanner, slps)
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            got = client.run_grid(paths, [spanner], task="evaluate")
        assert got == serial

    def test_enumerate_preserves_canonical_order(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        serial = [
            list(Engine().enumerate(spanner, balanced_slp(d))) for d in docs
        ]
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            got = client.run_grid(paths, [spanner], task="enumerate")
        assert got == serial

    def test_fleet_persists_across_requests(self, daemon, corpus):
        _, paths = corpus
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            before = client.ping()["fleet"]["pids"]
            client.run_grid(paths, [ab_spanner()], task="count")
            client.run_grid(paths, [ab_spanner(r"(?P<x>b+)a")], task="count")
            after = client.ping()["fleet"]["pids"]
        assert before == after  # same worker processes served both jobs

    def test_errors_travel_and_connection_survives(self, daemon, corpus):
        _, paths = corpus
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            # one good request first: the fleet is warm from here on
            client.run_grid(paths[:1], [ab_spanner()], task="count")
            warm_pids = client.ping()["fleet"]["pids"]
            # unknown op
            with pytest.raises(ServiceError, match="unknown op"):
                client.request("frobnicate")
            # bad task name fails TaskSpec validation server-side
            with pytest.raises(ServiceError, match="unknown batch task"):
                client.run_grid(paths, [ab_spanner()], task="bogus")
            # a missing document is rejected before fan-out
            with pytest.raises(ServiceError, match="gone.slpb"):
                client.run_grid(
                    [paths[0], str(paths[0]) + "gone.slpb"],
                    [ab_spanner()],
                    task="count",
                )
            # a malformed limit is rejected before fan-out too
            with pytest.raises(ServiceError, match="'limit' must be"):
                client.request(
                    "run",
                    documents=list(paths[:1]),
                    spanners=[protocol.encode_spanner(ab_spanner())],
                    task="enumerate",
                    limit="10",
                )
            # an uncompilable pattern raises its real compile error
            with pytest.raises(ServiceError) as info:
                client.run_grid(
                    paths[:1],
                    [SpannerSpec(pattern="(?P<x>[", alphabet="ab")],
                    task="count",
                )
            assert info.value.remote_type == "RegexSyntaxError"
            # ... the connection keeps working, and none of those bad
            # requests cost the daemon its warm fleet
            assert client.ping()["fleet"]["pids"] == warm_pids
            assert client.run_grid(paths[:1], [ab_spanner()], task="count")

    def test_check_op(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        expected = Engine().evaluate(spanner, balanced_slp(docs[0]))
        hit = sorted(expected, key=str)[0]
        with ServiceClient(daemon.socket_path, timeout=TIMEOUT) as client:
            assert client.check(paths[0], spanner, hit) is True
            assert client.check(
                paths[0], spanner, SpanTuple({"x": Span(1, 1)})
            ) is (SpanTuple({"x": Span(1, 1)}) in expected)

    def test_session_facade_over_the_daemon(self, daemon, corpus):
        docs, paths = corpus
        spanner = ab_spanner()
        serial = Engine().count_corpus(spanner, [balanced_slp(d) for d in docs])
        with connect(daemon.socket_path, timeout=TIMEOUT) as session:
            assert session.backend == "daemon"
            assert session.corpus(spanner, paths, task="count") == serial
            # in-memory SLPs are spilled client-side and travel by path
            assert session.count(spanner, balanced_slp(docs[0])) == serial[0]
            info = session.stats()
            assert info["backend"] == "daemon" and info["fleet"]["alive"] == 2
            with pytest.raises(NotImplementedError, match="in-process"):
                session.ranked(spanner, paths[0])

    def test_client_shutdown_op_stops_the_daemon(self, service_socket, tmp_path):
        svc = ServiceThread(SessionConfig(jobs=1), service_socket).start()
        with ServiceClient(service_socket, timeout=TIMEOUT) as client:
            assert client.shutdown() == {"stopping": True}
        svc.stop(timeout=TIMEOUT)
        assert not os.path.exists(service_socket)
        import multiprocessing

        leftovers = [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith("repro-parallel")
        ]
        assert not leftovers, leftovers


class TestLifecycle:
    def test_stale_socket_file_is_reclaimed(self, service_socket):
        # A dead daemon leaves its socket file behind; binding a fresh
        # one must reclaim it instead of failing with EADDRINUSE.
        sock = socket_module.socket(socket_module.AF_UNIX)
        sock.bind(service_socket)
        sock.close()  # bound then closed: the path exists, nobody listens
        with ServiceThread(SessionConfig(jobs=1), service_socket) as svc:
            assert wait_ready(svc.socket_path, timeout=TIMEOUT)["fleet"]["alive"] == 1

    def test_live_socket_is_refused(self, service_socket):
        with ServiceThread(SessionConfig(jobs=1), service_socket):
            with pytest.raises(ServiceError, match="already listening"):
                SpannerService._reclaim_stale_socket(service_socket)

    def test_socket_is_owner_only(self, service_socket):
        with ServiceThread(SessionConfig(jobs=1), service_socket):
            assert os.stat(service_socket).st_mode & 0o777 == 0o600

    def test_wait_ready_times_out_cleanly(self, service_socket):
        with pytest.raises(ServiceError, match="became ready"):
            wait_ready(service_socket, timeout=0.5, interval=0.1)

    def test_client_connect_error_is_actionable(self, service_socket):
        client = ServiceClient(service_socket, timeout=1.0)
        with pytest.raises(ServiceError, match="serve"):
            client.ping()
