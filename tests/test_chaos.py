"""Chaos suite (PR 9): the daemon under injected failure.

The failure-semantics contract, verified end to end against a real
daemon with real fleet worker processes:

* under a seeded ``REPRO_FAULTS`` schedule (worker crashes, wire drops,
  store corruption), every request either returns results bit-identical
  to the serial engine or raises a *typed* service error — never a
  hang, never a wrong answer, and never a poisoned daemon;
* a hung shard is recovered by the scheduler's watchdog within a
  bounded time while other tenants keep progressing;
* per-request deadlines expire at every stage — queued, mid-shard, and
  pre-dispatch — with :class:`DeadlineExceeded` and cancelled shards;
* the client never blocks forever on a dead-but-connected peer,
  retries only provably-safe failures, and a session can degrade
  gracefully to the in-process backend.
"""

import os
import socket as socket_module
import threading
import time

import pytest

from repro import faults
from repro.engine import Engine
from repro.faults import FAULTS_ENV, FAULTS_SEED_ENV, FaultPlan, FaultRule
from repro.obs.metrics import get_registry
from repro.service.client import ServiceClient
from repro.service.protocol import (
    DeadlineExceeded,
    ProtocolError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.server import TEST_FAULTS_ENV, ServiceThread
from repro.session import SessionConfig, connect
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp
from repro.spanner.regex import compile_spanner

TIMEOUT = 120.0


def ab_spanner(pattern=r".*(?P<x>a+)b.*"):
    return compile_spanner(pattern, alphabet="ab")


@pytest.fixture(autouse=True)
def disarm_faults():
    """No chaos test leaks an armed plan into the next test."""
    yield
    faults.set_plan(None)


@pytest.fixture
def corpus(tmp_path):
    docs = ["aabab" * 4, "bbbb", "abab" * 6, "aab" * 5]
    paths = []
    for k, text in enumerate(docs):
        path = str(tmp_path / f"doc{k}.slpb")
        slp_io.save_binary(balanced_slp(text), path)
        paths.append(path)
    return docs, paths


# -- the chaos differential ---------------------------------------------------


class TestChaosDifferential:
    def test_identical_results_or_typed_errors_never_a_poisoned_daemon(
        self, service_socket, tmp_path, corpus, monkeypatch
    ):
        """The capstone: a seeded mixed-fault schedule over a real fleet.

        Worker crashes are bounded by a cross-process counter file (the
        first two shard executions fleet-wide die with the injected exit
        code, retries then pass); one daemon-side response frame is
        dropped mid-stream; every worker's first store restore reads
        corrupted bytes (quarantined + rebuilt).  The serial engine is
        the oracle throughout.
        """
        docs, paths = corpus
        spanner = ab_spanner()
        serial = [
            Engine().count(spanner, balanced_slp(d)) for d in docs
        ]
        crash_counter = str(tmp_path / "crash-counter")
        monkeypatch.setenv(
            FAULTS_ENV,
            ";".join(
                [
                    f"worker.shard:crash:nth=2,counter={crash_counter}",
                    "wire.server.send:drop:nth=3",
                    "store.load.bytes:corrupt:nth=1",
                ]
            ),
        )
        monkeypatch.setenv(FAULTS_SEED_ENV, "9")
        faults.reset_plan()  # arm this process; fleet workers inherit

        config = SessionConfig(
            jobs=2, store_dir=str(tmp_path / "prep"), timeout=TIMEOUT
        )
        successes = 0
        typed_errors = 0
        with ServiceThread(config, service_socket) as svc:
            for attempt in range(6):
                client = ServiceClient(
                    svc.socket_path, timeout=TIMEOUT, retries=1
                )
                try:
                    got = client.run_grid(
                        paths,
                        [spanner],
                        task="count",
                        priority=attempt % 3,  # mixed-tenant weights
                        tag=f"tenant-{attempt % 2}",
                    )
                except ServiceError:
                    typed_errors += 1  # typed, never a bare hang/crash
                else:
                    assert got == serial  # bit-identical or nothing
                    successes += 1
                finally:
                    client.close()
            assert successes >= 1
            assert os.path.getsize(crash_counter) >= 2  # crashes really fired

            # Disarm and prove the daemon is not poisoned: same fleet,
            # clean request, exact results, healthy ping, live metrics.
            faults.set_plan(None)
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                assert client.run_grid(paths, [spanner], task="count") == serial
                info = client.ping()
                assert info["fleet"]["alive"] == info["fleet"]["jobs"] == 2
                counters = (
                    client.metrics().get("combined", {}).get("counters", {})
                )
            assert counters.get("faults.injected", 0) >= 1


# -- the hung-shard watchdog --------------------------------------------------


class TestWatchdog:
    def test_hung_shard_is_killed_retried_and_the_job_completes(
        self, service_socket, tmp_path, corpus, monkeypatch
    ):
        """One shard hangs 60s; ``shard_timeout=1`` must finish the job
        in seconds, not minutes, while a second tenant keeps moving."""
        docs, paths = corpus
        spanner = ab_spanner()
        serial = [Engine().count(spanner, balanced_slp(d)) for d in docs]
        hang_counter = str(tmp_path / "hang-counter")
        monkeypatch.setenv(
            FAULTS_ENV,
            f"worker.shard:hang:nth=1,counter={hang_counter},arg=60",
        )
        faults.reset_plan()

        config = SessionConfig(
            jobs=2,
            store_dir=str(tmp_path / "prep"),
            timeout=TIMEOUT,
            shard_timeout=1.0,
        )
        results = {}

        def tenant(name):
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                results[name] = client.run_grid(
                    paths, [spanner], task="count", tag=name
                )

        with ServiceThread(config, service_socket) as svc:
            start = time.monotonic()
            threads = [
                threading.Thread(target=tenant, args=(name,), daemon=True)
                for name in ("tenant-a", "tenant-b")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(TIMEOUT)
                assert not t.is_alive()
            elapsed = time.monotonic() - start
            assert results["tenant-a"] == serial
            assert results["tenant-b"] == serial
            # Recovery must not wait out the 60s hang: the watchdog
            # kills the worker once its ~1s allowance (scaled by shard
            # cost, doubled per prior attempt) expires.
            assert elapsed < 30, f"watchdog recovery took {elapsed:.1f}s"
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                sched = client.ping()["scheduler"]
            assert sched["watchdog_kills"] >= 1
        assert os.path.getsize(hang_counter) >= 1


# -- per-request deadlines ----------------------------------------------------


class TestDeadlines:
    def _slow_grid(self, client, paths, seconds, **kwargs):
        return client.run_grid(
            paths,
            [ab_spanner()],
            task="count",
            _test_params={"_shard_sleep": seconds},
            **kwargs,
        )

    def test_expires_while_queued_behind_another_tenant(
        self, service_socket, tmp_path, corpus, monkeypatch
    ):
        monkeypatch.setenv(TEST_FAULTS_ENV, "1")
        docs, paths = corpus
        config = SessionConfig(
            jobs=1, store_dir=str(tmp_path / "prep"), timeout=TIMEOUT
        )
        with ServiceThread(config, service_socket) as svc:
            slow_result = {}

            def occupant():
                with ServiceClient(svc.socket_path, timeout=TIMEOUT) as c:
                    slow_result["got"] = self._slow_grid(c, paths, 2.0)

            hog = threading.Thread(target=occupant, daemon=True)
            hog.start()
            time.sleep(0.5)  # the single worker is now busy sleeping
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                with pytest.raises(DeadlineExceeded, match="deadline"):
                    client.run_grid(
                        paths, [ab_spanner()], task="count", deadline_ms=500
                    )
            hog.join(TIMEOUT)
            assert not hog.is_alive()
            # the occupying tenant was never collateral damage
            serial = [
                Engine().count(ab_spanner(), balanced_slp(d)) for d in docs
            ]
            assert slow_result["got"] == serial

    def test_expires_mid_shard_and_cancels_the_fleet_work(
        self, service_socket, tmp_path, corpus, monkeypatch
    ):
        monkeypatch.setenv(TEST_FAULTS_ENV, "1")
        docs, paths = corpus
        config = SessionConfig(
            jobs=1, store_dir=str(tmp_path / "prep"), timeout=TIMEOUT
        )
        with ServiceThread(config, service_socket) as svc:
            start = time.monotonic()
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                with pytest.raises(DeadlineExceeded):
                    self._slow_grid(client, paths, 10.0, deadline_ms=1000)
            elapsed = time.monotonic() - start
            # failed at the deadline, not after the 10s-per-shard sleeps
            assert elapsed < 8, f"deadline surfaced after {elapsed:.1f}s"
            # in-flight shards were cancelled (workers killed/respawned),
            # the daemon stays healthy and exact for the next tenant
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                got = client.run_grid(paths, [ab_spanner()], task="count")
                sched = client.ping()["scheduler"]
            serial = [
                Engine().count(ab_spanner(), balanced_slp(d)) for d in docs
            ]
            assert got == serial
            assert sched["jobs_deadline_exceeded"] >= 1

    def test_expires_before_dispatch_on_a_zero_budget(
        self, service_socket, tmp_path, corpus, monkeypatch
    ):
        monkeypatch.setenv(TEST_FAULTS_ENV, "1")
        _, paths = corpus
        config = SessionConfig(
            jobs=1, store_dir=str(tmp_path / "prep"), timeout=TIMEOUT
        )
        with ServiceThread(config, service_socket) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                # the scheduler expires before it dispatches, so a budget
                # that is already spent at admission never reaches a worker
                with pytest.raises(DeadlineExceeded):
                    self._slow_grid(client, paths, 2.0, deadline_ms=1)
                assert client.ping()["scheduler"]["jobs_deadline_exceeded"] >= 1

    def test_bad_deadline_is_a_protocol_error(self, service_socket, corpus):
        _, paths = corpus
        with ServiceThread(SessionConfig(jobs=1), service_socket) as svc:
            with ServiceClient(svc.socket_path, timeout=TIMEOUT) as client:
                for bad in (0, -5, "soon", True):
                    with pytest.raises(ProtocolError):
                        client.run_grid(
                            paths, [ab_spanner()], task="count", deadline_ms=bad
                        )
                # the connection survives rejected requests
                assert client.ping()["fleet"]["jobs"] == 1


# -- client-side robustness ---------------------------------------------------


class TestClientRobustness:
    def test_dead_but_connected_peer_times_out(self, service_socket):
        """Satellite regression: a peer that accepts and then stalls
        must surface as a timeout, not block the client forever."""
        server = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        server.bind(service_socket)
        server.listen(1)  # connections complete in the backlog; no reads
        try:
            client = ServiceClient(service_socket, timeout=0.5, retries=0)
            start = time.monotonic()
            with pytest.raises(ServiceError, match="transport failure"):
                client.ping()
            assert time.monotonic() - start < 5.0
            assert client._sock is None  # desync guard: socket dropped
            client.close()
        finally:
            server.close()

    def test_connect_refused_is_retried_then_typed(self, tmp_path):
        counter = get_registry().counter("client.retries")
        before = counter.value
        client = ServiceClient(
            str(tmp_path / "nobody-home.sock"),
            retries=2,
            backoff=0.01,
            backoff_max=0.02,
        )
        with pytest.raises(ServiceUnavailableError, match="is 'repro-spanner serve' running"):
            client.ping()
        assert counter.value == before + 2  # both retries counted

    def test_mid_stream_drop_is_never_retried(self, service_socket, corpus):
        """A failure after the request frame went out must surface, not
        resend — the daemon may already be running the job."""
        _, paths = corpus
        with ServiceThread(SessionConfig(jobs=1), service_socket) as svc:
            faults.set_plan(
                FaultPlan(
                    [FaultRule(site="wire.client.recv", kind="drop", nth=1)]
                )
            )
            counter = get_registry().counter("client.retries")
            before = counter.value
            client = ServiceClient(svc.socket_path, timeout=TIMEOUT, retries=2)
            try:
                with pytest.raises(ServiceError, match="transport failure"):
                    client.run_grid(paths, [ab_spanner()], task="count")
                assert counter.value == before  # no retry of in-flight work
                faults.set_plan(None)
                assert client.ping()["fleet"]["jobs"] == 1  # clean reconnect
            finally:
                client.close()


# -- session graceful degradation ---------------------------------------------


class TestSessionFallback:
    def test_fallback_serves_identical_results_in_process(self, tmp_path):
        spanner = ab_spanner()
        doc = balanced_slp("aabab")
        serial = Engine().count(spanner, doc)
        fallbacks = get_registry().counter("session.fallbacks")
        before = fallbacks.value
        with connect(
            str(tmp_path / "gone.sock"), on_unavailable="fallback"
        ) as session:
            session._backend.client.retries = 0  # keep the test fast
            assert session.count(spanner, doc) == serial
            assert session.backend == "daemon"  # the config didn't change
        assert fallbacks.value > before

    def test_raise_is_the_default(self, tmp_path):
        with connect(str(tmp_path / "gone.sock")) as session:
            session._backend.client.retries = 0
            with pytest.raises(ServiceUnavailableError):
                session.count(ab_spanner(), balanced_slp("aabab"))

    def test_bogus_mode_is_rejected_up_front(self):
        with pytest.raises(ValueError, match="on_unavailable"):
            connect(on_unavailable="sometimes")


# -- the ping liveness probe --------------------------------------------------


class TestPingCommand:
    def test_healthy_daemon_exits_zero(self, service_socket, capsys):
        from repro.cli import main

        with ServiceThread(SessionConfig(jobs=1), service_socket) as svc:
            code = main(["ping", "--connect", svc.socket_path])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("ok:")
        assert "1/1 workers alive" in out

    def test_dead_socket_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["ping", "--connect", str(tmp_path / "gone.sock"), "--timeout", "2"]
        )
        assert code == 1
        assert "unhealthy:" in capsys.readouterr().err

    def test_stalled_daemon_exits_nonzero_within_timeout(
        self, service_socket, capsys
    ):
        server = socket_module.socket(
            socket_module.AF_UNIX, socket_module.SOCK_STREAM
        )
        server.bind(service_socket)
        server.listen(1)
        try:
            from repro.cli import main

            start = time.monotonic()
            code = main(
                ["ping", "--connect", service_socket, "--timeout", "0.5"]
            )
            assert code == 1
            assert time.monotonic() - start < 5.0
        finally:
            server.close()

    def test_deadline_ms_flag_reaches_the_wire_config(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["query", "g.slpb", "(?P<x>a)", "--connect", "/s", "--deadline-ms", "750"]
        )
        assert args.deadline_ms == 750
        args = build_parser().parse_args(
            ["serve", "--socket", "/s", "--shard-timeout", "2.5"]
        )
        assert args.shard_timeout == 2.5
