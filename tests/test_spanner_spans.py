"""Tests for repro.spanner.spans (Span, SpanTuple)."""

import pytest

from repro.spanner.spans import EMPTY_TUPLE, Span, SpanTuple, all_spans


class TestSpan:
    def test_value(self):
        assert Span(1, 3).value("abcde") == "ab"
        assert Span(3, 6).value("abcde") == "cde"

    def test_empty_span(self):
        span = Span(2, 2)
        assert len(span) == 0
        assert span.value("abc") == ""

    def test_full_document_span(self):
        assert Span(1, 6).value("abcde") == "abcde"

    def test_len(self):
        assert len(Span(2, 7)) == 5

    def test_shifted(self):
        assert Span(1, 3).shifted(4) == Span(5, 7)

    def test_is_valid_for(self):
        assert Span(1, 4).is_valid_for(3)
        assert Span(4, 4).is_valid_for(3)
        assert not Span(4, 5).is_valid_for(3)
        assert not Span(0, 2).is_valid_for(3)

    def test_repr(self):
        assert repr(Span(1, 3)) == "[1,3⟩"

    def test_ordering_is_tuple_like(self):
        assert Span(1, 2) < Span(1, 3) < Span(2, 2)


class TestAllSpans:
    def test_count(self):
        # |Spans(D)| = (d+1)(d+2)/2
        for d in range(5):
            assert len(list(all_spans(d))) == (d + 1) * (d + 2) // 2

    def test_contents_for_tiny_doc(self):
        assert list(all_spans(1)) == [Span(1, 1), Span(1, 2), Span(2, 2)]


class TestSpanTuple:
    def test_pickle_round_trip_preserves_set_membership(self):
        import pickle

        t = SpanTuple({"x": Span(1, 3), "y": Span(3, 5)})
        u = pickle.loads(pickle.dumps(t))
        assert u == t and hash(u) == hash(t)
        assert u in {t} and u in frozenset([t])

    def test_pickle_recomputes_hash_across_hash_seeds(self):
        # The cached hash is salted by string hash randomisation, so a
        # tuple pickled in a process with a different PYTHONHASHSEED (a
        # repro.parallel spawn worker) must recompute it on arrival —
        # a shipped stale hash silently breaks frozenset equality.
        import os
        import pickle
        import subprocess
        import sys

        script = (
            "import pickle, sys\n"
            "from repro.spanner.spans import Span, SpanTuple\n"
            "t = SpanTuple({'x': Span(1, 3), 'y': Span(3, 5)})\n"
            "sys.stdout.buffer.write(pickle.dumps(frozenset([t])))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.environ.get("PYTHONPATH"), *sys.path) if p
        )
        payload = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, check=True
        ).stdout
        foreign = pickle.loads(payload)
        local = frozenset([SpanTuple({"x": Span(1, 3), "y": Span(3, 5)})])
        assert foreign == local
        assert next(iter(foreign)) in local

    def test_getitem_and_get(self):
        t = SpanTuple({"x": Span(1, 2)})
        assert t["x"] == Span(1, 2)
        assert t.get("x") == Span(1, 2)
        assert t.get("y") is None
        with pytest.raises(KeyError):
            t["y"]

    def test_none_values_dropped(self):
        t = SpanTuple({"x": Span(1, 2), "y": None})
        assert t.defined == frozenset({"x"})
        assert "y" not in t

    def test_tuple_coercion(self):
        t = SpanTuple({"x": (1, 2)})
        assert t["x"] == Span(1, 2)

    def test_equality_ignores_variable_universe(self):
        a = SpanTuple({"x": Span(1, 2), "y": None})
        b = SpanTuple({"x": Span(1, 2)})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert SpanTuple({"x": Span(1, 2)}) != SpanTuple({"x": Span(1, 3)})
        assert SpanTuple({"x": Span(1, 2)}) != SpanTuple({"y": Span(1, 2)})

    def test_empty_tuple(self):
        assert len(EMPTY_TUPLE) == 0
        assert EMPTY_TUPLE == SpanTuple()
        assert repr(EMPTY_TUPLE) == "SpanTuple(∅)"

    def test_extract(self):
        t = SpanTuple({"x": Span(1, 3), "y": Span(4, 6)})
        assert t.extract("abcde") == {"x": "ab", "y": "de"}

    def test_is_valid_for(self):
        assert SpanTuple({"x": Span(1, 4)}).is_valid_for(3)
        assert not SpanTuple({"x": Span(1, 5)}).is_valid_for(3)

    def test_shifted(self):
        t = SpanTuple({"x": Span(1, 2)}).shifted(3)
        assert t["x"] == Span(4, 5)

    def test_iteration_and_len(self):
        t = SpanTuple({"x": Span(1, 2), "y": Span(2, 3)})
        assert sorted(t) == ["x", "y"]
        assert len(t) == 2
        assert dict(t.items())["y"] == Span(2, 3)

    def test_as_dict_is_copy(self):
        t = SpanTuple({"x": Span(1, 2)})
        d = t.as_dict()
        d["x"] = Span(9, 9)
        assert t["x"] == Span(1, 2)

    def test_notation(self):
        t = SpanTuple({"x1": Span(1, 5), "x3": Span(5, 7)})
        assert t.notation(["x1", "x2", "x3"]) == "([1,5⟩, ⊥, [5,7⟩)"

    def test_usable_in_sets(self):
        s = {SpanTuple({"x": Span(1, 2)}), SpanTuple({"x": Span(1, 2)})}
        assert len(s) == 1
