"""Tests for repro.engine.spec: the picklable process-boundary values.

Everything the parallel pool and the service fleet ship to workers is
one of these three specs, so their pickle round-trips — including the
kernel-*name* re-resolution a worker performs against its own
environment — are load-bearing for both subsystems.
"""

import multiprocessing
import pickle

import pytest

from repro.core.kernels import available_kernels
from repro.engine.batch import BATCH_TASKS, run_task
from repro.engine.spec import EngineConfig, SpannerSpec, TaskSpec
from repro.slp.construct import balanced_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.transform import END_SYMBOL


def ab_spanner(pattern=r".*(?P<x>a+)b.*"):
    return compile_spanner(pattern, alphabet="ab")


def round_trip(value):
    return pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


class TestEngineConfigPickling:
    def test_round_trip_preserves_every_field(self, tmp_path):
        config = EngineConfig(
            store_dir=str(tmp_path / "store"),
            structural_keys=False,
            balance=False,
            end_symbol="$",
            max_documents=3,
            max_spanners=5,
            max_preprocessings=7,
            kernel="python",
        )
        assert round_trip(config) == config

    def test_defaults_round_trip(self):
        config = EngineConfig()
        clone = round_trip(config)
        assert clone == config
        assert clone.structural_keys is True  # the cross-process default
        assert clone.end_symbol == END_SYMBOL

    def test_unpickled_config_builds_a_working_engine(self, tmp_path):
        config = round_trip(
            EngineConfig(store_dir=str(tmp_path / "s"), kernel="python")
        )
        engine = config.build()
        assert engine.kernel.name == "python"
        assert engine.store is not None and engine.structural_keys
        assert engine.count(ab_spanner(), balanced_slp("aabab")) == 3

    @pytest.mark.parametrize("kernel", [None, *available_kernels()])
    def test_kernel_name_is_re_resolved_in_a_worker(self, kernel):
        """The config carries a kernel *name*; a real worker process must
        re-resolve it against its own environment after unpickling."""
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_report_worker_kernel,
            args=(child_conn, pickle.dumps(EngineConfig(kernel=kernel))),
        )
        process.start()
        child_conn.close()
        name, count = parent_conn.recv()
        process.join(timeout=30)
        assert name in available_kernels()
        if kernel is not None:
            assert name == kernel
        assert count == 3  # the worker-built engine evaluates correctly

    def test_config_never_pickles_a_live_kernel_or_store(self, tmp_path):
        config = EngineConfig(store_dir=str(tmp_path), kernel="python")
        payload = pickle.dumps(config)
        assert b"PreprocessingStore" not in payload
        assert b"PythonKernel" not in payload


def _report_worker_kernel(conn, config_bytes) -> None:
    """Worker side of the re-resolution test (module-level: spawn-safe)."""
    engine = pickle.loads(config_bytes).build()
    count = engine.count(
        compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab"), balanced_slp("aabab")
    )
    conn.send((engine.kernel.name, count))
    conn.close()


class TestSpannerSpecPickling:
    def test_pattern_spec_round_trips(self):
        spec = SpannerSpec(pattern=r"(?P<x>a+)b", alphabet="ab")
        clone = round_trip(spec)
        assert clone == spec
        assert (
            clone.resolve().structural_digest()
            == spec.resolve().structural_digest()
        )

    def test_nfa_spec_round_trips_by_structure(self):
        nfa = ab_spanner()
        clone = round_trip(SpannerSpec.of(nfa))
        resolved = clone.resolve()
        assert resolved is not nfa  # a copy crossed the "boundary"
        assert resolved.structural_digest() == nfa.structural_digest()
        # and the copy evaluates identically
        from repro.engine import Engine

        slp = balanced_slp("aabab")
        engine = Engine()
        assert engine.evaluate(resolved, slp) == engine.evaluate(nfa, slp)

    def test_of_rejects_non_spanners(self):
        with pytest.raises(TypeError, match="SpannerNFA or SpannerSpec"):
            SpannerSpec.of("(?P<x>a)")


class TestTaskSpecValidation:
    def test_round_trip(self):
        spec = TaskSpec(task="enumerate", limit=5)
        assert round_trip(spec) == spec

    @pytest.mark.parametrize("task", BATCH_TASKS)
    def test_every_known_task_constructs(self, task):
        assert TaskSpec(task=task).task == task

    @pytest.mark.parametrize("bad", ["frobnicate", "", "Count", "evaluate "])
    def test_unknown_task_names_rejected_in_the_parent(self, bad):
        with pytest.raises(ValueError, match="unknown batch task"):
            TaskSpec(task=bad)

    def test_run_task_rejects_unknown_names_for_library_callers(self):
        from repro.engine import Engine

        with pytest.raises(ValueError, match="unknown batch task"):
            run_task(Engine(), "bogus", ab_spanner(), balanced_slp("ab"))
