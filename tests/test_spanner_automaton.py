"""Tests for repro.spanner.automaton (NFA/DFA over Σ ∪ P(Γ_X))."""

import pytest

from repro.errors import AutomatonError
from repro.spanner.automaton import EPSILON, NFABuilder, SpannerDFA, SpannerNFA
from repro.spanner.markers import cl, op


def simple_nfa():
    """Accepts a{⊿x}b{◁x} ... : 0 -a-> 1 -{⊿x}-> 2 -b-> 3 (accepting)."""
    b = NFABuilder()
    s0, s1, s2, s3 = (b.state() for _ in range(4))
    b.set_start(s0)
    b.arc(s0, "a", s1)
    b.arc(s1, frozenset({op("x")}), s2)
    b.arc(s2, "b", s3)
    b.accept(s3)
    return b.build()


class TestConstruction:
    def test_builder_start_is_state_zero(self):
        nfa = simple_nfa()
        assert nfa.start == 0
        assert nfa.num_states == 4

    def test_builder_requires_start(self):
        b = NFABuilder()
        b.state()
        with pytest.raises(AutomatonError):
            b.build()

    def test_out_of_range_states_rejected(self):
        with pytest.raises(AutomatonError):
            SpannerNFA(2, {0: {"a": frozenset({5})}}, [])
        with pytest.raises(AutomatonError):
            SpannerNFA(2, {}, [7])

    def test_zero_states_rejected(self):
        with pytest.raises(AutomatonError):
            SpannerNFA(0, {}, [])

    def test_size_counts_transitions(self):
        assert simple_nfa().size == 3


class TestAccessors:
    def test_successors(self):
        nfa = simple_nfa()
        assert nfa.successors(0, "a") == frozenset({1})
        assert nfa.successors(0, "b") == frozenset()

    def test_has_arc(self):
        nfa = simple_nfa()
        assert nfa.has_arc(0, "a", 1)
        assert not nfa.has_arc(0, "a", 2)

    def test_arcs_iteration(self):
        arcs = list(simple_nfa().arcs())
        assert len(arcs) == 3
        assert (0, "a", 1) in arcs

    def test_sigma_and_markers_split(self):
        nfa = simple_nfa()
        assert nfa.sigma == frozenset({"a", "b"})
        assert nfa.marker_symbols == frozenset({frozenset({op("x")})})

    def test_variables(self):
        assert simple_nfa().variables == frozenset({"x"})


class TestRuns:
    def test_accepts(self):
        nfa = simple_nfa()
        assert nfa.accepts(("a", frozenset({op("x")}), "b"))
        assert not nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a",))

    def test_run_returns_frontier(self):
        nfa = simple_nfa()
        assert nfa.run(("a",)) == frozenset({1})
        assert nfa.run(("z",)) == frozenset()


class TestEpsilon:
    def test_epsilon_closure_and_elimination(self):
        b = NFABuilder()
        s0, s1, s2 = (b.state() for _ in range(3))
        b.set_start(s0)
        b.epsilon(s0, s1)
        b.arc(s1, "a", s2)
        b.epsilon(s2, s0)
        b.accept(s2)
        nfa = b.build()
        assert nfa.has_epsilon
        eps_free = nfa.eliminate_epsilon()
        assert not eps_free.has_epsilon
        for word in ((), ("a",), ("a", "a"), ("b",)):
            assert nfa.accepts(word) == eps_free.accepts(word)

    def test_epsilon_accepting_through_closure(self):
        b = NFABuilder()
        s0, s1 = b.state(), b.state()
        b.set_start(s0)
        b.epsilon(s0, s1)
        b.accept(s1)
        nfa = b.build().eliminate_epsilon()
        assert nfa.accepts(())


class TestDeterminize:
    def test_subset_construction(self):
        b = NFABuilder()
        s0, s1, s2 = (b.state() for _ in range(3))
        b.set_start(s0)
        b.arc(s0, "a", s0)
        b.arc(s0, "a", s1)
        b.arc(s1, "b", s2)
        b.accept(s2)
        nfa = b.build()
        assert not nfa.is_deterministic
        dfa = nfa.determinize()
        assert dfa.is_deterministic
        for word in (("a", "b"), ("a", "a", "b"), ("b",), ("a",)):
            assert nfa.accepts(word) == dfa.accepts(word)

    def test_dfa_step(self):
        b = NFABuilder()
        s0, s1 = b.state(), b.state()
        b.set_start(s0)
        b.arc(s0, "a", s1)
        b.accept(s1)
        dfa = b.build(deterministic=True)
        assert isinstance(dfa, SpannerDFA)
        assert dfa.step(0, "a") == 1
        assert dfa.step(0, "b") is None

    def test_dfa_constructor_rejects_nondeterminism(self):
        with pytest.raises(AutomatonError):
            SpannerDFA(2, {0: {"a": frozenset({0, 1})}}, [1])


class TestTrim:
    def test_removes_useless_states(self):
        b = NFABuilder()
        s0, s1, dead, unreachable = (b.state() for _ in range(4))
        b.set_start(s0)
        b.arc(s0, "a", s1)
        b.arc(s0, "b", dead)       # dead: no path to acceptance
        b.arc(unreachable, "a", s1)
        b.accept(s1)
        trimmed = b.build().trim()
        assert trimmed.num_states == 2
        assert trimmed.accepts(("a",))
        assert not trimmed.accepts(("b",))

    def test_empty_language_trims_to_sink(self):
        b = NFABuilder()
        s0 = b.state()
        b.set_start(s0)
        trimmed = b.build().trim()
        assert trimmed.num_states == 1
        assert not trimmed.accepts(())

    def test_trim_preserves_language(self):
        nfa = simple_nfa()
        trimmed = nfa.trim()
        for word in (("a", frozenset({op("x")}), "b"), ("a", "b")):
            assert nfa.accepts(word) == trimmed.accepts(word)


class TestRenumber:
    def test_renumbered_preserves_language(self):
        nfa = simple_nfa()
        mapping = {0: 0, 1: 3, 2: 1, 3: 2}
        renamed = nfa.renumbered(mapping, 4)
        assert renamed.accepts(("a", frozenset({op("x")}), "b"))
