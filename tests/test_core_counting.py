"""Tests for repro.core.counting (counting + ranked access extension)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.slp.construct import balanced_slp
from repro.slp.families import caterpillar_slp, power_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.spanner.transform import pad_slp, pad_spanner
from repro.baselines.naive import naive_evaluate
from repro.core.computation import compute
from repro.core.counting import (
    CountingTables,
    RankedAccess,
    count_results,
    ranked_access,
)
from repro.core.matrices import Preprocessing

from tests.conftest import WELLFORMED_PATTERNS, random_doc


class TestCounting:
    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS)
    def test_count_matches_reference(self, pattern, alphabet, compiled_patterns):
        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) & 0xFFF)
        for _ in range(4):
            doc = random_doc(rng, alphabet, 8)
            assert count_results(balanced_slp(doc), nfa) == len(
                naive_evaluate(nfa, doc)
            ), doc

    def test_exponential_count_exact(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        assert count_results(power_slp("ab", 40), nfa) == 2**40
        assert count_results(power_slp("ab", 50), nfa) == 2**50

    def test_empty_relation(self):
        nfa = compile_spanner(r"(?P<x>aa)", alphabet="ab")
        assert count_results(balanced_slp("ab"), nfa) == 0

    def test_empty_tuple_counted(self):
        nfa = compile_spanner(r"b+|(?P<x>a)", alphabet="ab")
        assert count_results(balanced_slp("bb"), nfa) == 1

    def test_nfa_preprocessing_rejected(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab").eliminate_epsilon()
        prep = Preprocessing(pad_slp(balanced_slp("abab")), pad_spanner(nfa))
        with pytest.raises(EvaluationError):
            CountingTables(prep)

    def test_quadratic_join_count(self):
        nfa = compile_spanner(r".*(?P<x>c).*(?P<y>c).*", alphabet="abc")
        doc = ("ab" * 3 + "c") * 30
        assert count_results(balanced_slp(doc), nfa) == 30 * 29 // 2


class TestRankedAccess:
    def test_select_covers_relation(self, compiled_patterns):
        rng = random.Random(5)
        for pattern, alphabet in WELLFORMED_PATTERNS[:8]:
            nfa = compiled_patterns[pattern]
            doc = random_doc(rng, alphabet, 9)
            slp = balanced_slp(doc)
            ra = ranked_access(slp, nfa)
            selected = [ra.select_tuple(r) for r in range(ra.total)]
            assert len(selected) == len(set(selected)), (pattern, doc)
            assert set(selected) == compute(slp, nfa), (pattern, doc)

    def test_out_of_range(self):
        nfa = compile_spanner(r"(?P<x>a)", alphabet="a")
        ra = ranked_access(balanced_slp("a"), nfa)
        assert ra.total == 1
        with pytest.raises(IndexError):
            ra.select(1)
        with pytest.raises(IndexError):
            ra.select(-1)

    def test_select_on_terabyte_relation(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        ra = ranked_access(power_slp("ab", 40), nfa)
        assert ra.total == 2**40
        # the canonical order here walks 'ab' blocks right-to-left
        assert ra.select_tuple(0)["x"].start == 2**41 - 1
        assert ra.select_tuple(ra.total - 1)["x"] == Span(1, 3)
        middle = ra.select_tuple(2**39)["x"]
        assert middle.start % 2 == 1  # every result is a real 'ab' position

    def test_slice(self):
        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        ra = ranked_access(power_slp("ab", 4), nfa)
        window = ra.slice(3, 7)
        assert len(window) == 4
        assert window == [ra.select_tuple(r) for r in range(3, 7)]
        with pytest.raises(IndexError):
            ra.slice(0, ra.total + 1)

    def test_deep_grammar_select(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        slp = caterpillar_slp(2000)
        ra = ranked_access(slp, nfa)
        assert ra.total > 0
        selected = {ra.select_tuple(r) for r in range(min(ra.total, 30))}
        assert all(isinstance(t, SpanTuple) for t in selected)

    def test_stream_order_matches_canonical_order(self, compiled_patterns):
        # Regression: final_states used to be built in set-iteration order,
        # so enumerate_raw() and the canonical select(0..total-1) order
        # could disagree.  They must be the *same sequence*, not just the
        # same set.
        from repro.core.evaluator import CompressedSpannerEvaluator

        rng = random.Random(17)
        for pattern, alphabet in WELLFORMED_PATTERNS[:8]:
            nfa = compiled_patterns[pattern]
            doc = random_doc(rng, alphabet, 9)
            ev = CompressedSpannerEvaluator(nfa, balanced_slp(doc))
            ra = ev.ranked()
            assert list(ev.enumerate_raw()) == [
                ra.select(r) for r in range(ra.total)
            ], (pattern, doc)

    def test_evaluator_integration(self):
        from repro.core.evaluator import CompressedSpannerEvaluator

        nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        ev = CompressedSpannerEvaluator(nfa, power_slp("ab", 8))
        assert ev.count() == 256
        ra = ev.ranked()
        assert ra.total == 256
        assert {ra.select_tuple(r) for r in range(256)} == ev.evaluate()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from([p for p, _ in WELLFORMED_PATTERNS]),
    st.data(),
)
def test_counting_and_selection_consistency(pattern, data):
    """Property: total == |relation| and select is a bijection onto it."""
    alphabet = dict(WELLFORMED_PATTERNS)[pattern]
    nfa = compile_spanner(pattern, alphabet=alphabet)
    doc = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=10))
    slp = balanced_slp(doc)
    relation = compute(slp, nfa)
    ra = ranked_access(slp, nfa)
    assert ra.total == len(relation)
    assert {ra.select_tuple(r) for r in range(ra.total)} == relation


def test_evaluator_count_and_ranked_share_tables():
    from repro.core.evaluator import CompressedSpannerEvaluator

    nfa = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
    ev = CompressedSpannerEvaluator(nfa, power_slp("ab", 6))
    assert ev.count() == 64
    ra = ev.ranked()
    assert ra.tables is ev._counting  # one build, shared
    assert ra.total == 64
