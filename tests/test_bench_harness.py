"""Tests for repro.bench.harness (timing and table utilities)."""

import time

import pytest

from repro.bench.harness import (
    DelayProfile,
    Table,
    fmt_seconds,
    measure_enumeration,
    time_call,
)


class TestTimeCall:
    def test_returns_result_and_time(self):
        result, seconds = time_call(lambda a, b: a + b, 2, 3)
        assert result == 5
        assert seconds >= 0

    def test_repeat_keeps_best(self):
        result, seconds = time_call(sum, [1, 2, 3], repeat=3)
        assert result == 6


class TestMeasureEnumeration:
    def test_counts_and_delays(self):
        profile = measure_enumeration(lambda: iter(range(5)))
        assert profile.count == 5
        assert profile.exhausted
        assert len(profile.delays) == 4

    def test_max_results_cap(self):
        profile = measure_enumeration(lambda: iter(range(100)), max_results=10)
        assert profile.count == 10
        assert not profile.exhausted

    def test_empty_iterator(self):
        profile = measure_enumeration(lambda: iter(()))
        assert profile.count == 0
        assert profile.exhausted
        assert profile.max_delay == profile.first_result

    def test_statistics(self):
        profile = DelayProfile(preprocessing=0.1, first_result=0.01, delays=[1.0, 3.0, 2.0])
        assert profile.max_delay == 3.0
        assert profile.mean_delay == 2.0
        assert profile.median_delay == 2.0


class TestTable:
    def test_render_contains_data(self):
        table = Table("demo", ["n", "time"])
        table.add(1, 0.5)
        table.add(1024, 0.125)
        out = table.render()
        assert "## demo" in out
        assert "1024" in out and "0.125" in out

    def test_wrong_arity_rejected(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = Table("demo", ["v"])
        table.add(0.000001234)
        table.add(123456.789)
        out = table.render()
        assert "1.23e-06" in out

    def test_empty_table_renders(self):
        assert "## empty" in Table("empty", ["x"]).render()


class TestFmtSeconds:
    def test_ranges(self):
        assert fmt_seconds(0.0000005).endswith("µs")
        assert fmt_seconds(0.005).endswith("ms")
        assert fmt_seconds(2.5).endswith("s")
