"""Tests for repro.bench.harness (timing and table utilities)."""

import math
import time

import pytest

from repro.bench.harness import (
    DelayProfile,
    Table,
    fmt_seconds,
    measure_enumeration,
    time_call,
)


class TestTimeCall:
    def test_returns_result_and_time(self):
        result, seconds = time_call(lambda a, b: a + b, 2, 3)
        assert result == 5
        assert seconds >= 0

    def test_repeat_keeps_best(self):
        result, seconds = time_call(sum, [1, 2, 3], repeat=3)
        assert result == 6


class TestMeasureEnumeration:
    def test_counts_and_delays(self):
        profile = measure_enumeration(lambda: iter(range(5)))
        assert profile.count == 5
        assert profile.exhausted
        assert len(profile.delays) == 4

    def test_max_results_cap(self):
        profile = measure_enumeration(lambda: iter(range(100)), max_results=10)
        assert profile.count == 10
        assert not profile.exhausted

    def test_exhausted_exactly_at_max_results(self):
        # Regression: an iterator ending exactly at the cap is exhausted.
        profile = measure_enumeration(lambda: iter(range(10)), max_results=10)
        assert profile.count == 10
        assert profile.exhausted

    def test_empty_iterator_reports_nan_delays(self):
        # Regression: an empty run must not report a perfect 0.0 profile.
        profile = measure_enumeration(lambda: iter(()))
        assert profile.count == 0
        assert profile.exhausted
        assert math.isnan(profile.max_delay)
        assert math.isnan(profile.mean_delay)
        assert math.isnan(profile.median_delay)

    def test_single_result_falls_back_to_first_result(self):
        profile = measure_enumeration(lambda: iter([42]))
        assert profile.count == 1
        assert profile.exhausted
        assert profile.max_delay == profile.first_result

    def test_statistics(self):
        profile = DelayProfile(
            preprocessing=0.1, first_result=0.01, delays=[1.0, 3.0, 2.0], count=4
        )
        assert profile.max_delay == 3.0
        assert profile.mean_delay == 2.0
        assert profile.median_delay == 2.0

    def test_manual_construction_without_count_keeps_stats(self):
        # Direct construction with delays but the default count=0 must not
        # report NaN — only a truly empty profile (no delays, no results) is.
        profile = DelayProfile(preprocessing=0.1, first_result=0.01, delays=[1.0, 3.0])
        assert profile.max_delay == 3.0
        assert profile.mean_delay == 2.0


class TestTable:
    def test_render_contains_data(self):
        table = Table("demo", ["n", "time"])
        table.add(1, 0.5)
        table.add(1024, 0.125)
        out = table.render()
        assert "## demo" in out
        assert "1024" in out and "0.125" in out

    def test_wrong_arity_rejected(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_float_formatting(self):
        table = Table("demo", ["v"])
        table.add(0.000001234)
        table.add(123456.789)
        out = table.render()
        assert "1.23e-06" in out

    def test_empty_table_renders(self):
        assert "## empty" in Table("empty", ["x"]).render()


class TestFmtSeconds:
    def test_ranges(self):
        assert fmt_seconds(0.0000005).endswith("µs")
        assert fmt_seconds(0.005).endswith("ms")
        assert fmt_seconds(2.5).endswith("s")


class TestProbeSafety:

    def test_zero_cap_consumes_nothing_at_all(self):
        # With a 0 cap even the exhaustion probe is skipped: no work done.
        consumed = []

        def gen():
            for i in range(5):
                consumed.append(i)
                yield i

        profile = measure_enumeration(gen, max_results=0)
        assert profile.count == 0
        assert consumed == []
        assert profile.delays == []
        assert not profile.exhausted

    def test_probe_false_bounds_consumption(self):
        # probe=False: the cap also bounds wall-clock; nothing past it is
        # consumed, at the cost of exhausted staying False.
        consumed = []

        def gen():
            for i in range(5):
                consumed.append(i)
                yield i

        profile = measure_enumeration(gen, max_results=2, probe=False)
        assert profile.count == 2
        assert consumed == [0, 1]
        assert not profile.exhausted

    def test_probe_error_keeps_profile(self):
        # The exhaustion probe past max_results must not lose the profile
        # when the next item's computation raises.
        def gen():
            yield from range(3)
            raise RuntimeError("boom after the cap")

        profile = measure_enumeration(gen, max_results=3)
        assert profile.count == 3
        assert not profile.exhausted
        assert isinstance(profile.probe_error, RuntimeError)
