"""Hypothesis property tests: the cross-implementation correctness core.

The central invariant of the whole reproduction: for every well-formed
spanner M and every document D, all implementations agree::

    naive(M, D) == compute(M, slp(D)) == enumerate(M, slp(D))
                == UncompressedEvaluator(M, D)

and the derived tasks (non-emptiness, model checking, counting) are
consistent with that relation — regardless of which grammar represents D.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.slp.balance import balance
from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.derive import text
from repro.slp.families import random_slp
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.spanner.regex import compile_spanner
from repro.baselines.naive import naive_evaluate
from repro.baselines.uncompressed import UncompressedEvaluator
from repro.core.computation import compute
from repro.core.enumeration import enumerate_spanner
from repro.core.model_checking import model_check
from repro.core.nonemptiness import is_nonempty

from tests.conftest import WELLFORMED_PATTERNS

_COMPILED = {
    pattern: compile_spanner(pattern, alphabet=alphabet)
    for pattern, alphabet in WELLFORMED_PATTERNS
}
_ALPHABETS = dict(WELLFORMED_PATTERNS)

pattern_strategy = st.sampled_from([p for p, _ in WELLFORMED_PATTERNS])


@settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pattern_strategy, st.data())
def test_all_implementations_agree(pattern, data):
    nfa = _COMPILED[pattern]
    alphabet = _ALPHABETS[pattern]
    doc = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=9))
    reference = naive_evaluate(nfa, doc)
    slp = balanced_slp(doc)
    assert compute(slp, nfa) == reference
    assert set(enumerate_spanner(slp, nfa)) == reference
    assert UncompressedEvaluator(nfa, doc).evaluate() == reference
    assert is_nonempty(slp, nfa) == bool(reference)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pattern_strategy, st.data())
def test_grammar_shape_is_irrelevant(pattern, data):
    """The result depends only on D(S), never on the grammar's shape."""
    nfa = _COMPILED[pattern]
    alphabet = _ALPHABETS[pattern]
    doc = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=30))
    grammars = [balanced_slp(doc), bisection_slp(doc), repair_slp(doc), lz_slp(doc)]
    results = {compute(slp, nfa) for slp in grammars}
    assert len(results) == 1


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=10**6),
    pattern_strategy,
)
def test_random_grammars_match_their_decompression(num_inner, seed, pattern):
    """Evaluate on a random DAG-shaped SLP == evaluate on its decompression."""
    nfa = _COMPILED[pattern]
    alphabet = _ALPHABETS[pattern]
    slp = random_slp(num_inner, alphabet=alphabet, seed=seed, max_length=200)
    doc = text(slp)
    assert compute(slp, nfa) == UncompressedEvaluator(nfa, doc).evaluate()


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pattern_strategy, st.data())
def test_model_check_consistent_with_relation(pattern, data):
    nfa = _COMPILED[pattern]
    alphabet = _ALPHABETS[pattern]
    doc = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=7))
    slp = balanced_slp(doc)
    relation = compute(slp, nfa)
    for tup in relation:
        assert model_check(slp, nfa, tup)
    # a handful of random non-members must be rejected
    from repro.baselines.naive import candidate_tuples

    rng = random.Random(data.draw(st.integers(min_value=0, max_value=999)))
    candidates = list(candidate_tuples(nfa.variables, len(doc)))
    rng.shuffle(candidates)
    for tup in candidates[:10]:
        assert model_check(slp, nfa, tup) == (tup in relation)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pattern_strategy, st.data())
def test_enumeration_is_duplicate_free(pattern, data):
    nfa = _COMPILED[pattern]
    alphabet = _ALPHABETS[pattern]
    doc = data.draw(st.text(alphabet=alphabet, min_size=1, max_size=12))
    got = list(enumerate_spanner(balanced_slp(doc), nfa))
    assert len(got) == len(set(got))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pattern_strategy, st.data())
def test_balancing_preserves_results(pattern, data):
    nfa = _COMPILED[pattern]
    alphabet = _ALPHABETS[pattern]
    seed = data.draw(st.integers(min_value=0, max_value=10**6))
    slp = random_slp(25, alphabet=alphabet, seed=seed, max_length=150)
    assert compute(slp, nfa) == compute(balance(slp), nfa)
