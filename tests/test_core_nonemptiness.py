"""Tests for repro.core.nonemptiness (Theorem 5.1.1)."""

import random

import pytest

from repro.slp.construct import balanced_slp
from repro.slp.families import power_slp
from repro.spanner.regex import compile_spanner
from repro.baselines.naive import naive_is_nonempty
from repro.core.nonemptiness import is_nonempty, project_to_sigma

from tests.conftest import WELLFORMED_PATTERNS, random_doc


class TestProjection:
    def test_marker_arcs_become_silent(self):
        nfa = compile_spanner(r"(?P<x>a)b", alphabet="ab")
        projected = project_to_sigma(nfa)
        assert projected.accepts(("a", "b"))
        assert not projected.marker_symbols

    def test_projection_has_no_epsilon(self):
        nfa = compile_spanner(r"(?P<x>a*)(?P<y>b*)", alphabet="ab")
        assert not project_to_sigma(nfa).has_epsilon


class TestNonEmptiness:
    def test_positive(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        assert is_nonempty(balanced_slp("bbabb"), nfa)

    def test_negative(self):
        nfa = compile_spanner(r".*(?P<x>aa).*", alphabet="ab")
        assert not is_nonempty(balanced_slp("ababab"), nfa)

    def test_empty_tuple_counts(self):
        # even a variable-free match makes the relation nonempty (∅-tuple)
        nfa = compile_spanner(r"a+", alphabet="a")
        assert is_nonempty(balanced_slp("aaa"), nfa)

    def test_huge_compressed_document(self):
        nfa = compile_spanner(r".*(?P<x>ba).*", alphabet="ab")
        assert is_nonempty(power_slp("ab", 40), nfa)  # d = 2^41
        nfa_neg = compile_spanner(r".*(?P<x>aa).*", alphabet="ab")
        assert not is_nonempty(power_slp("ab", 40), nfa_neg)

    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS)
    def test_matches_naive_reference(self, pattern, alphabet, compiled_patterns):
        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) & 0xFFFF)
        for _ in range(5):
            doc = random_doc(rng, alphabet, 6)
            assert is_nonempty(balanced_slp(doc), nfa) == naive_is_nonempty(nfa, doc), doc
