"""Edge-case tests across module boundaries (distinct behaviours only)."""

import itertools

import pytest

from repro.errors import EvaluationError
from repro.slp.construct import balanced_slp
from repro.slp.grammar import SLP
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.baselines.naive import naive_evaluate
from repro.core.computation import compute
from repro.core.counting import ranked_access
from repro.core.enumeration import enumerate_spanner
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.core.incremental import IncrementalSpannerIndex
from repro.core.model_checking import model_check


class TestSingleCharacterDocument:
    """d = 1 exercises every boundary: leaf start symbol, position d+1 = 2."""

    def test_all_tasks(self):
        slp = SLP({}, {"T": "a"}, "T")
        spanner = compile_spanner(r"(?P<x>a)", alphabet="a")
        ev = CompressedSpannerEvaluator(spanner, slp)
        expected = frozenset({SpanTuple({"x": Span(1, 2)})})
        assert ev.is_nonempty()
        assert ev.evaluate() == expected
        assert set(ev.enumerate()) == expected
        assert ev.count() == 1
        assert ev.model_check(SpanTuple({"x": Span(1, 2)}))
        assert not ev.model_check(SpanTuple({"x": Span(1, 1)}))

    def test_empty_span_captures(self):
        slp = SLP({}, {"T": "a"}, "T")
        spanner = compile_spanner(r"(?P<x>)a(?P<y>)", alphabet="a")
        result = compute(slp, spanner)
        assert result == frozenset(
            {SpanTuple({"x": Span(1, 1), "y": Span(2, 2)})}
        )


class TestUnicodeAlphabet:
    def test_non_ascii_symbols(self):
        doc = "αβαβα"
        slp = balanced_slp(doc)
        spanner = compile_spanner(r".*(?P<x>αβ).*", alphabet="αβ")
        ev = CompressedSpannerEvaluator(spanner, slp)
        assert ev.count() == 2
        for tup in ev.enumerate():
            assert tup["x"].value(doc) == "αβ"


class TestWholeDocumentSpan:
    def test_span_covering_everything(self):
        doc = "abab"
        spanner = compile_spanner(r"(?P<x>.*)", alphabet="ab")
        slp = balanced_slp(doc)
        result = compute(slp, spanner)
        assert result == frozenset({SpanTuple({"x": Span(1, 5)})})
        assert model_check(slp, spanner, SpanTuple({"x": Span(1, 5)}))

    def test_two_variables_at_document_end(self):
        """Multiple closes at position d+1 merge into one marker set."""
        doc = "ab"
        spanner = compile_spanner(r"(?P<x>a(?P<y>b))", alphabet="ab")
        result = compute(balanced_slp(doc), spanner)
        assert result == frozenset(
            {SpanTuple({"x": Span(1, 3), "y": Span(2, 3)})}
        )


class TestEmptyLanguageSpanner:
    def test_all_tasks_graceful(self):
        # 'ab' anchored cannot match inside a pure-'a' alphabet document
        spanner = compile_spanner(r"(?P<x>ab)", alphabet="ab")
        slp = balanced_slp("aaa")
        ev = CompressedSpannerEvaluator(spanner, slp)
        assert not ev.is_nonempty()
        assert ev.evaluate() == frozenset()
        assert list(ev.enumerate()) == []
        assert ev.count() == 0
        ra = ev.ranked()
        assert ra.total == 0
        with pytest.raises(IndexError):
            ra.select(0)


class TestFourMarkersOnePosition:
    def test_two_empty_spans_at_same_position(self):
        doc = "ab"
        spanner = compile_spanner(r"a(?P<x>)(?P<y>)b", alphabet="ab")
        result = compute(balanced_slp(doc), spanner)
        assert result == frozenset(
            {SpanTuple({"x": Span(2, 2), "y": Span(2, 2)})}
        )
        assert result == naive_evaluate(spanner, doc)


class TestNfaVersusDfaPaths:
    def test_evaluator_nfa_and_dfa_preprocessings_agree(self):
        spanner = compile_spanner(r".*(?P<x>ab|ba).*", alphabet="ab")
        slp = balanced_slp("abba")
        ev = CompressedSpannerEvaluator(spanner, slp)
        via_computation = ev.evaluate()  # NFA preprocessing
        via_enumeration = set(ev.enumerate())  # DFA preprocessing
        assert via_computation == via_enumeration

    def test_enumerate_nfa_dedup_equals_dfa(self):
        spanner = compile_spanner(r"(a*)(?P<x>ab)(.*)", alphabet="ab")
        slp = balanced_slp("aabab")
        dfa_stream = set(enumerate_spanner(slp, spanner, determinize=True))
        nfa_stream = set(
            enumerate_spanner(slp, spanner, determinize=False, deduplicate=True)
        )
        assert dfa_stream == nfa_stream == naive_evaluate(spanner, "aabab")


class TestSharedSubtreesInGrammar:
    def test_same_nonterminal_visited_with_different_contexts(self):
        """A maximally shared grammar: every occurrence of C needs its own
        (state, state) table entries."""
        slp = SLP(
            inner_rules={"S": ("C", "C"), "C": ("Ta", "Tb")},
            leaf_rules={"Ta": "a", "Tb": "b"},
            start="S",
        )  # derives 'abab'
        spanner = compile_spanner(r".*(?P<x>ba).*", alphabet="ab")
        assert compute(slp, spanner) == frozenset(
            {SpanTuple({"x": Span(2, 4)})}
        )


class TestIncrementalFromSingleChar:
    def test_grow_from_one_symbol(self):
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        index = IncrementalSpannerIndex(spanner, SLP({}, {"T": "a"}, "T"))
        assert index.count() == 0
        index.append("b")
        assert index.count() == 1
        index.append("ab")
        assert index.count() == 2


class TestRankedAccessOrderStability:
    def test_select_is_stable_across_instances(self):
        spanner = compile_spanner(r"(a|b)*(?P<x>ab)(a|b)*", alphabet="ab")
        slp = balanced_slp("abab" * 4)
        first = ranked_access(slp, spanner)
        second = ranked_access(slp, spanner)
        assert [first.select(r) for r in range(first.total)] == [
            second.select(r) for r in range(second.total)
        ]


class TestLargeAlphabet:
    def test_byte_sized_alphabet(self):
        import string

        alphabet = string.ascii_lowercase + string.digits
        doc = "x9z" * 30
        spanner = compile_spanner(r".*(?P<n>[0-9]).*", alphabet=alphabet)
        ev = CompressedSpannerEvaluator(spanner, balanced_slp(doc))
        assert ev.count() == 30

    def test_streaming_early_stop_large_alphabet(self):
        spanner = compile_spanner(r".*(?P<x>cat|dog).*", alphabet="catdog")
        ev = CompressedSpannerEvaluator(spanner, balanced_slp("catdogcat"))
        first_two = list(itertools.islice(ev.enumerate(), 2))
        assert len(first_two) == 2
