"""Tests for repro.engine (LRU caches, Engine facade, batch helpers)."""

import random

import pytest

from repro.slp.construct import balanced_slp
from repro.spanner.regex import compile_spanner
from repro.core.evaluator import CompressedSpannerEvaluator
from repro.engine import (
    BATCH_TASKS,
    Engine,
    LRUCache,
    PreprocessingCache,
    evaluate_corpus,
    evaluate_many,
    run_batch,
)

from tests.conftest import WELLFORMED_PATTERNS, random_doc

PATTERNS = [
    r".*(?P<x>ab).*",
    r"(?P<x>a+)b",
    r"(?P<x>a*)(?P<y>b*)",
    r"a(?P<x>.*)b",
]


def make_spanners():
    return [compile_spanner(p, alphabet="ab") for p in PATTERNS]


class TestLRUCache:
    def test_get_or_build_counts_hits_and_misses(self):
        cache = LRUCache(4)
        assert cache.get_or_build("k", lambda: 1) == 1
        assert cache.get_or_build("k", lambda: 2) == 1  # cached, not rebuilt
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'
        cache.put("c", 3)  # evicts 'b'
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        assert cache.get_or_build("k", lambda: 1) == 1
        assert cache.get_or_build("k", lambda: 2) == 2  # rebuilt every time
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.stats.hit_rate == 0.0
        cache.get_or_build("k", lambda: 1)
        cache.get_or_build("k", lambda: 1)
        assert cache.stats.hit_rate == 0.5


class TestPreprocessingCache:
    def _pair(self, doc="abab"):
        from repro.spanner.transform import pad_slp, pad_spanner

        nfa = pad_spanner(
            compile_spanner(r".*(?P<x>ab).*", alphabet="ab").eliminate_epsilon()
        )
        slp = pad_slp(balanced_slp(doc))
        return slp, nfa

    def test_same_objects_hit(self):
        cache = PreprocessingCache(4)
        slp, nfa = self._pair()
        first = cache.get(slp, nfa)
        assert cache.get(slp, nfa) is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_identity_not_structure_keyed(self):
        # Two structurally equal SLP objects are distinct cache entries.
        cache = PreprocessingCache(4)
        slp_a, nfa = self._pair()
        slp_b, _ = self._pair()
        assert slp_a.same_structure(slp_b)
        prep_a = cache.get(slp_a, nfa)
        prep_b = cache.get(slp_b, nfa)
        assert prep_a is not prep_b
        assert cache.stats.misses == 2

    def test_eviction_rebuilds(self):
        cache = PreprocessingCache(1)
        slp_a, nfa = self._pair("abab")
        slp_b, _ = self._pair("aabb")
        first = cache.get(slp_a, nfa)
        cache.get(slp_b, nfa)  # evicts the slp_a entry
        assert len(cache) == 1
        again = cache.get(slp_a, nfa)
        assert again is not first  # rebuilt after eviction
        assert cache.stats.evictions >= 1


class TestEngineParity:
    """Engine results must equal the single-pair evaluator on every task."""

    def test_all_tasks_match_evaluator(self, compiled_patterns):
        engine = Engine()
        rng = random.Random(23)
        for pattern, alphabet in WELLFORMED_PATTERNS[:6]:
            nfa = compiled_patterns[pattern]
            doc = random_doc(rng, alphabet, 9)
            slp = balanced_slp(doc)
            ev = CompressedSpannerEvaluator(nfa, slp)
            assert engine.is_nonempty(nfa, slp) == ev.is_nonempty()
            assert engine.evaluate(nfa, slp) == ev.evaluate()
            assert engine.count(nfa, slp) == ev.count()
            assert list(engine.enumerate(nfa, slp)) == list(ev.enumerate())
            ra_engine, ra_ev = engine.ranked(nfa, slp), ev.ranked()
            assert ra_engine.total == ra_ev.total
            assert [ra_engine.select(r) for r in range(ra_engine.total)] == [
                ra_ev.select(r) for r in range(ra_ev.total)
            ]
            for tup in list(ev.evaluate())[:3]:
                assert engine.model_check(nfa, slp, tup)

    def test_ranked_shares_counting_tables(self):
        engine = Engine()
        slp = balanced_slp("abab")
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        engine.count(nfa, slp)
        ra = engine.ranked(nfa, slp)
        assert engine.cache_stats()["counting"].hits >= 1
        assert ra.total == engine.count(nfa, slp)


class TestEngineCaching:
    def test_repeat_query_hits_preprocessing_cache(self):
        engine = Engine()
        slp = balanced_slp("ababab")
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        engine.count(nfa, slp)
        misses = engine.cache_stats()["preprocessings"].misses
        engine.count(nfa, slp)
        stats = engine.cache_stats()["preprocessings"]
        assert stats.misses == misses  # no rebuild
        assert stats.hits >= 1

    def test_evaluate_many_shares_document(self):
        engine = Engine()
        slp = balanced_slp("aababb")
        spanners = make_spanners()
        results = engine.evaluate_many(spanners, slp)
        assert len(results) == len(spanners)
        assert engine.cache_stats()["documents"].misses == 1
        for spanner, result in zip(spanners, results):
            assert result == CompressedSpannerEvaluator(spanner, slp).evaluate()

    def test_evaluate_corpus_shares_spanner(self):
        engine = Engine()
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        docs = [balanced_slp(d) for d in ("abab", "bbbb", "aab", "ba")]
        results = engine.evaluate_corpus(spanner, docs)
        assert len(results) == len(docs)
        assert engine.cache_stats()["spanners"].misses == 1
        for slp, result in zip(docs, results):
            assert result == CompressedSpannerEvaluator(spanner, slp).evaluate()

    def test_eviction_keeps_results_correct(self):
        engine = Engine(max_preprocessings=1)
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        docs = [balanced_slp(d) for d in ("abab", "aabb")]
        baseline = [CompressedSpannerEvaluator(spanner, d).count() for d in docs]
        for _ in range(3):  # alternate pairs: every lookup evicts the other
            assert engine.count_corpus(spanner, docs) == baseline
        assert engine.cache_stats()["preprocessings"].evictions >= 1

    def test_clear_caches(self):
        engine = Engine()
        slp = balanced_slp("abab")
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        engine.count(nfa, slp)
        engine.clear_caches()
        assert engine.cache_stats()["preprocessings"].size == 0
        assert engine.count(nfa, slp) == 2  # rebuilds fine


class TestBatchHelpers:
    def test_evaluate_many_module_level(self):
        slp = balanced_slp("aabab")
        spanners = make_spanners()
        expected = [
            CompressedSpannerEvaluator(sp, slp).evaluate() for sp in spanners
        ]
        assert evaluate_many(spanners, slp) == expected

    def test_evaluate_corpus_module_level(self):
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        docs = [balanced_slp(d) for d in ("abab", "ba")]
        expected = [
            CompressedSpannerEvaluator(spanner, d).evaluate() for d in docs
        ]
        assert evaluate_corpus(spanner, docs) == expected

    def test_run_batch_grid_row_major(self):
        spanners = make_spanners()[:2]
        docs = [balanced_slp(d) for d in ("abab", "bb")]
        items = run_batch(spanners, docs, task="count")
        assert [(i.document_index, i.spanner_index) for i in items] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        assert all(i.task == "count" for i in items)

    def test_run_batch_enumerate_limit(self):
        spanner = compile_spanner(r".*(?P<x>a).*", alphabet="ab")
        items = run_batch([spanner], [balanced_slp("aaaa")], task="enumerate", limit=2)
        assert len(items[0].result) == 2

    def test_run_batch_rejects_unknown_task(self):
        with pytest.raises(ValueError):
            run_batch([], [], task="frobnicate")
        assert "count" in BATCH_TASKS

    def test_run_batch_unknown_task_message_names_valid_tasks(self):
        # The library-path validation satellite: a clear ValueError that
        # tells the caller what *is* accepted.
        with pytest.raises(ValueError, match="unknown batch task 'select'"):
            run_batch([], [], task="select")
        with pytest.raises(ValueError, match="evaluate"):
            run_batch([], [], task="select")

    def test_run_task_validates_and_dispatches(self):
        from repro.engine import Engine, run_task

        spanner = compile_spanner(r".*(?P<x>a).*", alphabet="ab")
        slp = balanced_slp("aaba")
        engine = Engine()
        with pytest.raises(ValueError, match="unknown batch task"):
            run_task(engine, "frobnicate", spanner, slp)
        assert run_task(engine, "count", spanner, slp) == 3
        assert run_task(engine, "nonempty", spanner, slp) is True
        assert len(run_task(engine, "enumerate", spanner, slp, limit=2)) == 2
        assert run_task(engine, "evaluate", spanner, slp) == engine.evaluate(
            spanner, slp
        )

    def test_run_batch_evaluate_is_library_only(self):
        # ``evaluate`` is a valid library task (full relation as a
        # frozenset) but deliberately not in the CLI's printable subset.
        from repro.engine import PRINTABLE_BATCH_TASKS

        spanner = compile_spanner(r".*(?P<x>a).*", alphabet="ab")
        items = run_batch([spanner], [balanced_slp("aa")], task="evaluate")
        assert isinstance(items[0].result, frozenset)
        assert "evaluate" in BATCH_TASKS
        assert "evaluate" not in PRINTABLE_BATCH_TASKS
        assert set(PRINTABLE_BATCH_TASKS) < set(BATCH_TASKS)

    def test_run_batch_enumerate_limit_zero(self):
        spanner = compile_spanner(r".*(?P<x>a).*", alphabet="ab")
        items = run_batch([spanner], [balanced_slp("aaaa")], task="enumerate", limit=0)
        assert items[0].result == []

    def test_run_batch_enumerate_negative_limit(self):
        spanner = compile_spanner(r".*(?P<x>a).*", alphabet="ab")
        items = run_batch(
            [spanner], [balanced_slp("aaaa")], task="enumerate", limit=-3
        )
        assert items[0].result == []


class TestCountingCoEviction:
    def test_counting_tables_evict_with_their_preprocessing(self):
        from repro.engine import PreprocessingEntry

        engine = Engine(max_preprocessings=1)
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        doc_a, doc_b = balanced_slp("abab"), balanced_slp("aabb")
        assert engine.count(spanner, doc_a) == 2
        entry_a = engine._entry(spanner, doc_a, deterministic=True)
        assert isinstance(entry_a, PreprocessingEntry)
        assert entry_a.counting is not None
        engine.count(spanner, doc_b)  # evicts doc_a's entry (and its tables)
        stats = engine.cache_stats()
        assert stats["preprocessings"].size == 1
        assert stats["counting"].size == 1  # bounded together, no strays
        assert engine.count(spanner, doc_a) == 2  # rebuilds cleanly

    def test_enumerate_only_workload_reports_no_counting_tables(self):
        engine = Engine()
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        slp = balanced_slp("abab")
        list(engine.enumerate(spanner, slp))
        stats = engine.cache_stats()
        assert stats["preprocessings"].size == 1
        assert stats["counting"].size == 0  # no tables were ever built
        assert stats["counting"].misses == 0


class TestDocumentEvictionResilience:
    def test_prep_cache_survives_document_lru_thrash(self):
        # Regression: prep entries used to be keyed by id() of the derived
        # padded forms, so evicting a document from its (smaller) LRU
        # orphaned its prep entries and a repeat pass missed everything.
        engine = Engine(max_documents=3)
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        docs = [balanced_slp("ab" * (k + 1)) for k in range(6)]
        first = engine.count_corpus(spanner, docs)
        misses_after_first = engine.cache_stats()["preprocessings"].misses
        second = engine.count_corpus(spanner, docs)
        stats = engine.cache_stats()["preprocessings"]
        assert second == first
        assert stats.misses == misses_after_first  # pass 2 is all hits
        assert stats.size == len(docs)  # no orphaned duplicates

    def test_deterministic_padded_nfa_shares_one_prep_entry(self):
        # When the padded NFA is already deterministic, the NFA and DFA
        # tasks must share one cache entry instead of building the same
        # tables twice.
        engine = Engine()
        spanner = compile_spanner(r"(?P<x>a)", alphabet="a")
        slp = balanced_slp("a")
        assert engine._spanner(spanner).padded_nfa.is_deterministic
        engine.evaluate(spanner, slp)   # NFA path
        engine.count(spanner, slp)      # DFA path
        assert engine.cache_stats()["preprocessings"].size == 1

    def test_clear_caches_counts_evictions(self):
        engine = Engine()
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        engine.count(spanner, balanced_slp("abab"))
        engine.clear_caches()
        stats = engine.cache_stats()
        assert stats["preprocessings"].evictions == 1
        assert stats["counting"].evictions == 1

    def test_prep_hit_skips_spanner_repreparation(self):
        # Regression: a preprocessing-cache hit must not re-run the spanner
        # preparation chain after the spanner was evicted from its own LRU.
        engine = Engine(max_spanners=2)
        slp = balanced_slp("abab")
        spanners = make_spanners()  # 4 distinct > max_spanners
        first = engine.count_many(spanners, slp)
        spanner_misses = engine.cache_stats()["spanners"].misses
        second = engine.count_many(spanners, slp)
        assert second == first
        stats = engine.cache_stats()
        assert stats["spanners"].misses == spanner_misses  # no re-preparation
        assert stats["preprocessings"].size == len(spanners)

class TestStructuralKeys:
    def test_equal_grammars_share_one_entry(self):
        engine = Engine(structural_keys=True)
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        first, second = balanced_slp("abab"), balanced_slp("abab")
        assert first is not second and first.same_structure(second)
        assert engine.count(spanner, first) == engine.count(spanner, second) == 2
        stats = engine.cache_stats()
        assert stats["preprocessings"].size == 1
        assert stats["preprocessings"].hits >= 1
        assert stats["documents"].misses == 1  # prepared once, shared

    def test_key_mode_exposed_in_stats(self):
        for structural, expected in ((False, "identity"), (True, "structural")):
            engine = Engine(structural_keys=structural)
            for stats in engine.cache_stats().values():
                assert stats.key_mode == expected

    def test_structural_eviction_order_is_lru(self):
        # Regression for the structural-key path: eviction must follow
        # recency of *structural* use — touching an entry through a fresh
        # (but equal) SLP object must refresh it, and the key evicted must
        # be the least recently used digest, not the least recently seen
        # object.
        engine = Engine(structural_keys=True, max_preprocessings=2)
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        doc_a, doc_b, doc_c = "abab", "aabb", "bbaa"
        engine.count(spanner, balanced_slp(doc_a))
        engine.count(spanner, balanced_slp(doc_b))
        # refresh A through a *different object* with the same structure
        engine.count(spanner, balanced_slp(doc_a))
        assert engine.cache_stats()["preprocessings"].hits == 1
        # C evicts the LRU entry, which must be B (A was refreshed)
        engine.count(spanner, balanced_slp(doc_c))
        assert engine.cache_stats()["preprocessings"].evictions == 1
        misses = engine.cache_stats()["preprocessings"].misses
        engine.count(spanner, balanced_slp(doc_a))  # still cached: hit
        assert engine.cache_stats()["preprocessings"].misses == misses
        engine.count(spanner, balanced_slp(doc_b))  # was evicted: rebuild
        assert engine.cache_stats()["preprocessings"].misses == misses + 1

    def test_results_match_identity_mode(self, compiled_patterns):
        identity, structural = Engine(), Engine(structural_keys=True)
        rng = random.Random(7)
        for pattern, alphabet in WELLFORMED_PATTERNS[:4]:
            nfa = compiled_patterns[pattern]
            slp = balanced_slp(random_doc(rng, alphabet, 8))
            assert structural.evaluate(nfa, slp) == identity.evaluate(nfa, slp)
            assert structural.count(nfa, slp) == identity.count(nfa, slp)
            assert structural.is_nonempty(nfa, slp) == identity.is_nonempty(nfa, slp)


class TestNondeterministicProbe:
    def test_nondeterministic_fallback_probe_not_counted_as_hit(self):
        # The silent probe of the NFA-keyed entry must not inflate the hit
        # rate or promote an unusable entry when a DFA has to be built.
        engine = Engine()
        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")  # NFA ≠ DFA
        slp = balanced_slp("abab")
        engine.evaluate(spanner, slp)  # builds the NFA entry
        engine.count(spanner, slp)     # probes, rejects, builds the DFA entry
        stats = engine.cache_stats()["preprocessings"]
        assert stats.size == 2
        assert stats.misses == 2
        assert stats.hits == 0  # the rejected probe is not a hit
