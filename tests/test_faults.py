"""Unit tests for the composable fault-injection layer (repro.faults).

Everything here runs in-process against explicitly installed plans
(:func:`set_plan`); the cross-process environment-armed path is
exercised by the chaos suite (``test_chaos.py``).
"""

import os

import pytest

from repro.faults import (
    CONTROL_KINDS,
    DATA_KINDS,
    FAULTS_ENV,
    FAULTS_SEED_ENV,
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_point,
    get_plan,
    mangle,
    parse_plan,
    parse_rule,
    reset_plan,
    set_plan,
)
from repro.obs.metrics import get_registry


@pytest.fixture(autouse=True)
def disarm():
    """Every test leaves the process-global plan disarmed."""
    yield
    set_plan(None)


# -- parsing ------------------------------------------------------------------


class TestParsing:
    def test_minimal_rule(self):
        rule = parse_rule("worker.shard:crash")
        assert rule.site == "worker.shard"
        assert rule.kind == "crash"
        assert rule.p == 1.0 and rule.nth is None and rule.times is None

    def test_full_option_set(self):
        rule = parse_rule(
            "store.save.*:hang:p=0.5,nth=3,times=2,arg=1.5,counter=/tmp/c"
        )
        assert rule.p == 0.5
        assert rule.nth == 3
        assert rule.times == 2
        assert rule.arg == 1.5
        assert rule.counter == "/tmp/c"

    def test_plan_splits_on_semicolons_and_skips_blanks(self):
        plan = parse_plan("a:crash; b:hang:arg=1 ;; c:corrupt", seed=3)
        assert [r.site for r in plan.rules] == ["a", "b", "c"]
        assert plan.seed == 3

    @pytest.mark.parametrize(
        "bad",
        [
            "justasite",  # no kind
            "site:frobnicate",  # unknown kind
            "site:crash:wat=1",  # unknown option
            "site:crash:nth",  # option without '='
            ":crash",  # empty site
            "site:crash:p=1.5",  # probability out of range
            "site:crash:counter=/tmp/c",  # counter without nth
        ],
    )
    def test_bad_rules_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)

    def test_site_patterns_use_fnmatch(self):
        rule = parse_rule("store.save.*:error")
        assert rule.matches("store.save.bytes")
        assert rule.matches("store.save.commit")
        assert not rule.matches("store.load.bytes")
        assert not rule.matches("store.save")  # '*' needs one more segment char


# -- triggers -----------------------------------------------------------------


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultRule(site="s", kind="error", nth=3)])
        fires = [plan.fire("s", CONTROL_KINDS) is not None for _ in range(6)]
        assert fires == [False, False, True, False, False, False]

    def test_times_caps_always_on_rules(self):
        plan = FaultPlan([FaultRule(site="s", kind="error", times=2)])
        fires = [plan.fire("s", CONTROL_KINDS) is not None for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_probability_is_seed_deterministic(self):
        def draw(seed):
            plan = FaultPlan([FaultRule(site="s", kind="error", p=0.5)], seed=seed)
            return [plan.fire("s", CONTROL_KINDS) is not None for _ in range(64)]

        a, b = draw(7), draw(7)
        assert a == b  # same seed, same firing sequence
        assert any(a) and not all(a)  # p=0.5 over 64 hits: both outcomes
        assert draw(8) != a  # a different seed reshuffles

    def test_counter_file_fires_while_count_at_most_nth(self, tmp_path):
        counter = str(tmp_path / "hits")
        rule = FaultRule(site="s", kind="error", nth=2, counter=counter)
        # Two plans simulate two incarnations of a crashed-and-respawned
        # process: the file carries the count across them.
        first = FaultPlan([rule])
        assert first.fire("s", CONTROL_KINDS) is not None
        assert first.fire("s", CONTROL_KINDS) is not None
        second = FaultPlan([rule])
        assert second.fire("s", CONTROL_KINDS) is None  # count now 3 > nth
        assert os.path.getsize(counter) == 3

    def test_kind_filter_separates_control_and_data_rules(self):
        plan = FaultPlan(
            [
                FaultRule(site="s", kind="corrupt"),
                FaultRule(site="s", kind="error"),
            ]
        )
        fired = plan.fire("s", CONTROL_KINDS)
        assert fired is not None and fired.kind == "error"
        fired = plan.fire("s", DATA_KINDS)
        assert fired is not None and fired.kind == "corrupt"


# -- the declared sites -------------------------------------------------------


class TestSites:
    def test_fault_point_is_noop_without_a_plan(self):
        set_plan(None)
        fault_point("anything.at.all")  # must simply return

    def test_fault_point_raises_injected_fault(self):
        set_plan(FaultPlan([FaultRule(site="x", kind="error")]))
        with pytest.raises(InjectedFault, match="site 'x'"):
            fault_point("x")
        fault_point("unmatched.site")  # other sites unaffected

    def test_fault_point_enospc_is_a_real_oserror(self):
        set_plan(FaultPlan([FaultRule(site="x", kind="enospc")]))
        import errno

        with pytest.raises(OSError) as info:
            fault_point("x")
        assert info.value.errno == errno.ENOSPC

    def test_fault_point_drop_is_connection_reset(self):
        set_plan(FaultPlan([FaultRule(site="wire.client.send", kind="drop")]))
        with pytest.raises(ConnectionResetError):
            fault_point("wire.client.send")

    def test_mangle_corrupt_flips_exactly_one_byte(self):
        set_plan(FaultPlan([FaultRule(site="b", kind="corrupt")], seed=5))
        data = bytes(range(32))
        out = mangle("b", data)
        assert len(out) == len(data)
        diffs = [k for k in range(len(data)) if out[k] != data[k]]
        assert len(diffs) == 1
        assert out[diffs[0]] == data[diffs[0]] ^ 0xFF

    def test_mangle_torn_keeps_a_proper_prefix(self):
        set_plan(
            FaultPlan([FaultRule(site="b", kind="torn", arg=0.25)])
        )
        data = b"x" * 16
        out = mangle("b", data)
        assert out == data[:4]
        # never truncates to nothing, never returns the full payload
        set_plan(FaultPlan([FaultRule(site="b", kind="torn", arg=0.0)]))
        assert mangle("b", b"ab") == b"a"

    def test_mangle_passes_data_through_unarmed(self):
        set_plan(None)
        payload = b"untouched"
        assert mangle("b", payload) is payload

    def test_injections_count_in_the_metrics_registry(self):
        counter = get_registry().counter("faults.injected")
        before = counter.value
        set_plan(
            FaultPlan(
                [
                    FaultRule(site="a", kind="error"),
                    FaultRule(site="b", kind="corrupt"),
                ]
            )
        )
        with pytest.raises(InjectedFault):
            fault_point("a")
        mangle("b", b"data")
        assert counter.value == before + 2


# -- environment arming -------------------------------------------------------


class TestEnvironment:
    def test_plan_loads_lazily_from_the_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "env.site:error:nth=1")
        monkeypatch.setenv(FAULTS_SEED_ENV, "11")
        reset_plan()
        try:
            plan = get_plan()
            assert plan is not None
            assert plan.seed == 11
            with pytest.raises(InjectedFault):
                fault_point("env.site")
        finally:
            set_plan(None)

    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        reset_plan()
        assert get_plan() is None

    def test_set_plan_overrides_the_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "env.site:error")
        set_plan(None)  # explicit disarm wins over the env
        fault_point("env.site")
