"""Mutation tests for the repro-check architectural linter.

Each rule is demonstrated twice per invariant: a *mutation* fixture (a
tiny source tree carrying exactly the violation the rule exists to
catch) that must be flagged, and the repaired/whitelisted twin that must
come back clean.  On top of the fixtures, the suite self-checks the real
tree: ``src/repro`` must lint clean and the committed mypy ratchet must
satisfy coverage, floor and monotonicity.

The checker lives under ``tools/`` (it is a dev tool, not part of the
library), so the module path is inserted manually — same pattern as
``tests/test_spanner_spans.py`` uses for scripts.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from reprocheck import CheckConfig, check_paths, check_project  # noqa: E402
from reprocheck.findings import (  # noqa: E402
    apply_suppressions,
    parse_suppressions,
)
from reprocheck.cli import main as cli_main  # noqa: E402
from reprocheck.ratchet import SCHEMA, check_ratchet, mypy_command  # noqa: E402
from reprocheck.rules import ALL_RULES, FILE_RULES, PROJECT_RULES  # noqa: E402


def write_tree(root, files):
    """Materialise ``{relpath: source}`` under ``root``."""
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def lint(root, files, rule, paths=None, **config_overrides):
    """Findings of one rule over a fixture tree (plus any malformed tags)."""
    write_tree(root, files)
    config = CheckConfig(root=str(root), **config_overrides)
    return check_paths(paths or sorted(files), config, select=[rule])


def rules_of(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------------------
# rule catalogue sanity


def test_catalogue_is_the_documented_six():
    assert set(FILE_RULES) == {
        "numpy-containment",
        "process-boundary",
        "broad-except",
        "all-sync",
        "resource-discipline",
    }
    assert set(PROJECT_RULES) == {"protocol-completeness"}
    assert len(ALL_RULES) == 6


# ---------------------------------------------------------------------------
# numpy-containment


def test_numpy_unguarded_import_outside_kernel_is_flagged(tmp_path):
    findings = lint(
        tmp_path,
        {"src/repro/core/boolmat.py": "import numpy\n"},
        "numpy-containment",
    )
    assert len(findings) == 1
    assert findings[0].rule == "numpy-containment"
    assert "unguarded" in findings[0].message


def test_numpy_unguarded_import_in_kernel_module_is_allowed(tmp_path):
    findings = lint(
        tmp_path,
        {"src/repro/core/kernels/numpy_kernel.py": "import numpy as np\n"},
        "numpy-containment",
    )
    assert findings == []


def test_numpy_guarded_import_outside_whitelist_is_flagged(tmp_path):
    source = """\
        try:
            import numpy
        except ImportError:
            numpy = None
    """
    findings = lint(tmp_path, {"src/repro/slp/grammar.py": source}, "numpy-containment")
    assert len(findings) == 1
    assert "whitelist" in findings[0].message

    # The same guarded probe is legal in the kernel registry.
    findings = lint(
        tmp_path, {"src/repro/core/kernels/__init__.py": source}, "numpy-containment"
    )
    assert findings == []


def test_numpy_lazy_import_outside_whitelist_is_flagged(tmp_path):
    source = """\
        def fast_path(rows):
            import numpy as np
            return np.asarray(rows)
    """
    findings = lint(tmp_path, {"src/repro/core/counting.py": source}, "numpy-containment")
    assert len(findings) == 1
    findings = lint(tmp_path, {"src/repro/slp/lz.py": source}, "numpy-containment")
    assert findings == []


def test_numpy_from_import_is_caught_too(tmp_path):
    findings = lint(
        tmp_path,
        {"src/repro/session.py": "from numpy import asarray\n"},
        "numpy-containment",
    )
    assert len(findings) == 1


# ---------------------------------------------------------------------------
# broad-except


def test_broad_except_without_tag_is_flagged(tmp_path):
    source = """\
        def probe(path):
            try:
                return len(path)
            except Exception:
                return None
    """
    findings = lint(tmp_path, {"src/repro/a.py": source}, "broad-except")
    assert len(findings) == 1
    assert findings[0].line == 4
    assert "'except Exception'" in findings[0].message


def test_bare_except_is_flagged(tmp_path):
    source = """\
        def probe(path):
            try:
                return len(path)
            except:
                return None
    """
    findings = lint(tmp_path, {"src/repro/a.py": source}, "broad-except")
    assert len(findings) == 1
    assert "bare 'except:'" in findings[0].message


def test_broad_except_with_reasoned_tag_is_suppressed(tmp_path):
    source = """\
        def probe(path):
            try:
                return len(path)
            except Exception:  # repro-check: broad-except — worker fault barrier
                return None
    """
    assert lint(tmp_path, {"src/repro/a.py": source}, "broad-except") == []


def test_broad_except_tag_without_reason_does_not_suppress(tmp_path):
    source = """\
        def probe(path):
            try:
                return len(path)
            except Exception:  # repro-check: broad-except
                return None
    """
    findings = lint(tmp_path, {"src/repro/a.py": source}, "broad-except")
    # The reasonless tag is itself a finding AND the handler stays flagged.
    assert rules_of(findings) == ["broad-except", "suppression-format"]


def test_narrowed_except_is_clean(tmp_path):
    source = """\
        def probe(path):
            try:
                return len(path)
            except (OSError, ValueError):
                return None
    """
    assert lint(tmp_path, {"src/repro/a.py": source}, "broad-except") == []


# ---------------------------------------------------------------------------
# all-sync


def test_package_init_without_all_is_flagged(tmp_path):
    findings = lint(
        tmp_path,
        {"src/repro/__init__.py": "def evaluate():\n    return 0\n"},
        "all-sync",
    )
    assert len(findings) == 1
    assert "no literal __all__" in findings[0].message


def test_all_listing_an_unbound_name_is_flagged(tmp_path):
    source = """\
        def evaluate():
            return 0

        __all__ = ["evaluate", "count"]
    """
    findings = lint(tmp_path, {"src/repro/__init__.py": source}, "all-sync")
    assert len(findings) == 1
    assert "'count'" in findings[0].message and "never binds" in findings[0].message


def test_public_binding_missing_from_all_is_flagged(tmp_path):
    source = """\
        def evaluate():
            return 0

        def count():
            return 0

        __all__ = ["evaluate"]
    """
    findings = lint(tmp_path, {"src/repro/__init__.py": source}, "all-sync")
    assert len(findings) == 1
    assert "'count'" in findings[0].message and "missing from __all__" in findings[0].message


def test_synchronised_all_is_clean_and_non_init_modules_are_ignored(tmp_path):
    source = """\
        from typing import TYPE_CHECKING

        from repro.core import evaluate

        if TYPE_CHECKING:
            from repro.engine import Engine

        _helper = 1

        __all__ = ["Engine", "evaluate"]
    """
    assert lint(tmp_path, {"src/repro/__init__.py": source}, "all-sync") == []
    # The same drift in a plain module is not this rule's business.
    assert (
        lint(tmp_path, {"src/repro/util.py": "def f():\n    return 0\n"}, "all-sync")
        == []
    )


def test_duplicate_all_entry_is_flagged(tmp_path):
    source = """\
        def evaluate():
            return 0

        __all__ = ["evaluate", "evaluate"]
    """
    findings = lint(tmp_path, {"src/repro/__init__.py": source}, "all-sync")
    assert len(findings) == 1
    assert "duplicate" in findings[0].message


# ---------------------------------------------------------------------------
# resource-discipline


def test_unowned_open_is_flagged(tmp_path):
    source = """\
        def read(path):
            fh = open(path)
            return fh.read()
    """
    findings = lint(tmp_path, {"src/repro/a.py": source}, "resource-discipline")
    assert len(findings) == 1
    assert "'open'" in findings[0].message


def test_with_block_and_later_close_are_clean(tmp_path):
    source = """\
        def read(path):
            with open(path) as fh:
                return fh.read()

        def read_finally(path):
            fh = open(path)
            try:
                return fh.read()
            finally:
                fh.close()

        def make(path):
            return open(path)
    """
    assert lint(tmp_path, {"src/repro/a.py": source}, "resource-discipline") == []


def test_self_attribute_needs_an_owning_class(tmp_path):
    owned = """\
        class Store:
            def __init__(self, path):
                self.fh = open(path)

            def close(self):
                self.fh.close()
    """
    assert lint(tmp_path, {"src/repro/a.py": owned}, "resource-discipline") == []

    leaky = """\
        class Store:
            def __init__(self, path):
                self.fh = open(path)
    """
    findings = lint(tmp_path, {"src/repro/a.py": leaky}, "resource-discipline")
    assert len(findings) == 1


def test_mmap_acquisition_is_audited(tmp_path):
    source = """\
        import mmap

        def map_file(fileno):
            buf = mmap.mmap(fileno, 0)
            return buf.size()
    """
    findings = lint(tmp_path, {"src/repro/a.py": source}, "resource-discipline")
    assert len(findings) == 1
    assert "'mmap.mmap'" in findings[0].message


def test_cleanup_registration_counts_as_ownership(tmp_path):
    source = """\
        import atexit

        def open_log(path):
            fh = open(path, "a")
            atexit.register(fh.close)
            return None
    """
    assert lint(tmp_path, {"src/repro/a.py": source}, "resource-discipline") == []


# ---------------------------------------------------------------------------
# process-boundary


def test_worker_entry_point_with_non_spec_annotation_is_flagged(tmp_path):
    source = """\
        def worker_main(worker_id, task_conn, result_conn, engine: Engine):
            return engine
    """
    findings = lint(tmp_path, {"src/repro/parallel/worker.py": source}, "process-boundary")
    assert len(findings) == 1
    assert "'Engine'" in findings[0].message


def test_worker_entry_point_with_unannotated_cargo_is_flagged(tmp_path):
    source = """\
        def worker_main(worker_id, task_conn, result_conn, payload):
            return payload
    """
    findings = lint(tmp_path, {"src/repro/parallel/worker.py": source}, "process-boundary")
    assert len(findings) == 1
    assert "'payload'" in findings[0].message


def test_worker_entry_point_with_spec_types_is_clean(tmp_path):
    source = """\
        from typing import Optional, Sequence

        def worker_main(
            worker_id,
            task_conn,
            result_conn,
            config: EngineConfig,
            shards: Sequence[Shard],
            limit: Optional[int],
        ):
            return config
    """
    assert (
        lint(tmp_path, {"src/repro/parallel/worker.py": source}, "process-boundary")
        == []
    )


def test_boundary_hook_shipping_live_state_is_flagged(tmp_path):
    source = """\
        class Fleet:
            def _worker_args(self, shard):
                return (self.engine, shard)
    """
    findings = lint(tmp_path, {"src/repro/service/fleet.py": source}, "process-boundary")
    assert len(findings) == 1
    assert "self.engine" in findings[0].message


def test_boundary_hook_shipping_config_and_params_is_clean(tmp_path):
    source = """\
        class Fleet:
            def _worker_args(self, shard):
                return (self.config, shard, 4, "evaluate")

            def _shard_message(self, plan):
                return [plan, None]
    """
    assert (
        lint(tmp_path, {"src/repro/service/fleet.py": source}, "process-boundary")
        == []
    )


def test_ordinary_functions_are_not_boundary_audited(tmp_path):
    source = """\
        def helper(engine: Engine):
            return engine
    """
    assert lint(tmp_path, {"src/repro/a.py": source}, "process-boundary") == []


# ---------------------------------------------------------------------------
# protocol-completeness (project rule)

_PROTOCOL_OK = {
    "src/repro/service/protocol.py": """\
        REQUEST_KINDS = {"ping": "ping", "run": "run_grid"}
    """,
    "src/repro/service/server.py": """\
        def _dispatch(op, payload):
            if op == "ping":
                return {}
            if op == "run":
                return payload
            raise ValueError(op)
    """,
    "src/repro/service/client.py": """\
        class Client:
            def request(self, op, payload=None):
                return {"op": op, "payload": payload}

            def ping(self):
                return self.request("ping")

            def run_grid(self, grid):
                return self.request("run", grid)
    """,
}


def _protocol_findings(tmp_path, files):
    write_tree(tmp_path, files)
    config = CheckConfig(root=str(tmp_path))
    return check_paths(["src/repro"], config, select=["protocol-completeness"])


def test_protocol_in_sync_is_clean(tmp_path):
    assert _protocol_findings(tmp_path, _PROTOCOL_OK) == []


def test_declared_kind_without_server_handler_is_flagged(tmp_path):
    files = dict(_PROTOCOL_OK)
    files["src/repro/service/server.py"] = """\
        def _dispatch(op, payload):
            if op == "ping":
                return {}
            raise ValueError(op)
    """
    findings = _protocol_findings(tmp_path, files)
    assert len(findings) == 1
    assert "'run'" in findings[0].message and "never handles" in findings[0].message


def test_declared_kind_without_client_method_is_flagged(tmp_path):
    files = dict(_PROTOCOL_OK)
    files["src/repro/service/client.py"] = """\
        class Client:
            def request(self, op, payload=None):
                return {"op": op, "payload": payload}

            def ping(self):
                return self.request("ping")
    """
    findings = _protocol_findings(tmp_path, files)
    assert len(findings) == 1
    assert "no 'run_grid' method" in findings[0].message


def test_client_method_not_issuing_its_op_is_flagged(tmp_path):
    files = dict(_PROTOCOL_OK)
    files["src/repro/service/client.py"] = """\
        class Client:
            def request(self, op, payload=None):
                return {"op": op, "payload": payload}

            def ping(self):
                return self.request("ping")

            def run_grid(self, grid):
                return self.request("ping")
    """
    findings = _protocol_findings(tmp_path, files)
    assert len(findings) == 1
    assert "never issues self.request('run')" in findings[0].message


def test_server_handling_undeclared_op_is_flagged(tmp_path):
    files = dict(_PROTOCOL_OK)
    files["src/repro/service/server.py"] = """\
        def _dispatch(op, payload):
            if op in ("ping", "run"):
                return {}
            if op == "shutdown":
                return None
            raise ValueError(op)
    """
    findings = _protocol_findings(tmp_path, files)
    assert len(findings) == 1
    assert "'shutdown'" in findings[0].message and "never declares" in findings[0].message


def test_missing_request_kinds_declaration_is_flagged(tmp_path):
    files = dict(_PROTOCOL_OK)
    files["src/repro/service/protocol.py"] = "KINDS = ['ping']\n"
    findings = _protocol_findings(tmp_path, files)
    assert len(findings) == 1
    assert "no literal REQUEST_KINDS" in findings[0].message


def test_trees_without_a_service_layer_are_exempt(tmp_path):
    findings = lint(
        tmp_path, {"src/repro/a.py": "x = 1\n"}, "protocol-completeness"
    )
    assert findings == []


# ---------------------------------------------------------------------------
# suppression-tag grammar


def test_suppression_tag_dash_variants_and_multi_rule():
    tags, malformed = parse_suppressions(
        [
            "x = 1  # repro-check: broad-except — em dash reason",
            "y = 2  # repro-check: all-sync -- double dash reason",
            "z = 3  # repro-check: numpy-containment - single dash reason",
            "w = 4  # repro-check: broad-except, resource-discipline — both",
        ]
    )
    assert malformed == []
    assert tags[1] == {"broad-except"}
    assert tags[2] == {"all-sync"}
    assert tags[3] == {"numpy-containment"}
    assert tags[4] == {"broad-except", "resource-discipline"}


def test_standalone_tag_comment_covers_the_next_line():
    tags, malformed = parse_suppressions(
        ["# repro-check: broad-except — guarded on next line", "except Exception:"]
    )
    assert malformed == []
    assert tags[1] == tags[2] == {"broad-except"}


def test_reasonless_tag_is_malformed():
    tags, malformed = parse_suppressions(["x = 1  # repro-check: broad-except"])
    assert tags == {}
    assert len(malformed) == 1
    assert malformed[0].rule == "suppression-format"


def test_apply_suppressions_filters_only_matching_rule_and_line():
    from reprocheck.findings import Finding

    findings = [
        Finding("broad-except", "a.py", 3, "m"),
        Finding("all-sync", "a.py", 3, "m"),
        Finding("broad-except", "a.py", 9, "m"),
    ]
    kept = apply_suppressions(findings, {3: {"broad-except"}})
    assert [(f.rule, f.line) for f in kept] == [("all-sync", 3), ("broad-except", 9)]


# ---------------------------------------------------------------------------
# the mypy strict-typing ratchet


def _ratchet_toml(entries, schema=SCHEMA):
    lines = [f'schema = "{schema}"', "", "[modules]"]
    lines += [f'"{module}" = "{status}"' for module, status in entries.items()]
    return "\n".join(lines) + "\n"


def _ratchet_tree(tmp_path, entries, tree=None, **config_overrides):
    files = {module: "x = 1\n" for module in (entries if tree is None else tree)}
    files["mypy-ratchet.toml"] = _ratchet_toml(entries)
    write_tree(tmp_path, files)
    config_overrides.setdefault("ratchet_required", ())
    return CheckConfig(root=str(tmp_path), **config_overrides)


def test_ratchet_passes_on_a_covered_tree(tmp_path):
    config = _ratchet_tree(
        tmp_path, {"src/repro/a.py": "strict", "src/repro/b.py": "baseline"}
    )
    code, messages = check_ratchet(str(tmp_path), config=config, run_mypy=False)
    assert code == 0
    assert "1/2 modules strict" in messages[0]


def test_ratchet_flags_uncovered_module(tmp_path):
    config = _ratchet_tree(
        tmp_path,
        {"src/repro/a.py": "strict"},
        tree=["src/repro/a.py", "src/repro/new.py"],
    )
    code, messages = check_ratchet(str(tmp_path), config=config, run_mypy=False)
    assert code == 1
    assert any("src/repro/new.py" in m and "not covered" in m for m in messages)


def test_ratchet_flags_stale_entry(tmp_path):
    config = _ratchet_tree(
        tmp_path,
        {"src/repro/a.py": "strict", "src/repro/gone.py": "baseline"},
        tree=["src/repro/a.py"],
    )
    code, messages = check_ratchet(str(tmp_path), config=config, run_mypy=False)
    assert code == 1
    assert any("gone.py" in m and "stale" in m for m in messages)


def test_ratchet_enforces_the_strict_floor(tmp_path):
    config = _ratchet_tree(
        tmp_path,
        {"src/repro/engine/core.py": "baseline"},
        ratchet_required=("src/repro/engine",),
    )
    code, messages = check_ratchet(str(tmp_path), config=config, run_mypy=False)
    assert code == 1
    assert any("must be strict" in m for m in messages)


def test_ratchet_rejects_wrong_schema(tmp_path):
    write_tree(
        tmp_path,
        {
            "src/repro/a.py": "x = 1\n",
            "mypy-ratchet.toml": _ratchet_toml({"src/repro/a.py": "strict"}, schema="v0"),
        },
    )
    config = CheckConfig(root=str(tmp_path), ratchet_required=())
    code, messages = check_ratchet(str(tmp_path), config=config, run_mypy=False)
    assert code == 1
    assert any("schema" in m for m in messages)


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


def test_ratchet_is_monotone_against_git_head(tmp_path):
    config = _ratchet_tree(tmp_path, {"src/repro/a.py": "strict"})
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "ratchet a.py strict")

    # Demoting a strict module is the one illegal edit.
    (tmp_path / "mypy-ratchet.toml").write_text(
        _ratchet_toml({"src/repro/a.py": "baseline"}), encoding="utf-8"
    )
    code, messages = check_ratchet(str(tmp_path), config=config, run_mypy=False)
    assert code == 1
    assert any("cannot be demoted" in m for m in messages)

    # Promoting a baseline module (here: adding a new strict one) is fine.
    write_tree(tmp_path, {"src/repro/b.py": "x = 1\n"})
    (tmp_path / "mypy-ratchet.toml").write_text(
        _ratchet_toml({"src/repro/a.py": "strict", "src/repro/b.py": "strict"}),
        encoding="utf-8",
    )
    code, _ = check_ratchet(str(tmp_path), config=config, run_mypy=False)
    assert code == 0


@pytest.mark.skipif(
    mypy_command() is not None, reason="mypy installed: the skip path is dead"
)
def test_ratchet_require_mypy_fails_without_mypy(tmp_path):
    config = _ratchet_tree(tmp_path, {"src/repro/a.py": "strict"})
    code, messages = check_ratchet(
        str(tmp_path), config=config, require_mypy=True, run_mypy=True
    )
    assert code == 1
    assert any("required" in m for m in messages)


# ---------------------------------------------------------------------------
# CLI surface


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out.split()
    assert out == list(ALL_RULES)


def test_cli_unknown_rule_is_a_usage_error(capsys):
    assert cli_main(["--select", "no-such-rule"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_reports_findings_with_exit_1(tmp_path, capsys):
    write_tree(tmp_path, {"src/repro/a.py": "import numpy\n"})
    code = cli_main(["--root", str(tmp_path), "src/repro"])
    assert code == 1
    out = capsys.readouterr().out
    assert "[numpy-containment]" in out
    assert "1 finding" in out


def test_cli_json_output(tmp_path, capsys):
    import json

    write_tree(tmp_path, {"src/repro/a.py": "import numpy\n"})
    code = cli_main(["--root", str(tmp_path), "--json", "src/repro"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "numpy-containment"
    assert payload[0]["path"] == "src/repro/a.py"


# ---------------------------------------------------------------------------
# self-check: the real tree obeys its own linter


def test_real_tree_is_clean():
    findings = check_project(str(REPO_ROOT))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_real_ratchet_is_green_without_mypy():
    code, messages = check_ratchet(str(REPO_ROOT), run_mypy=False)
    assert code == 0, "\n".join(messages)
    assert "floor satisfied" in messages[0]


def test_module_entry_point_runs_clean_on_the_real_tree():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "tools"), str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    )
    proc = subprocess.run(
        [sys.executable, "-m", "reprocheck", "-q", "src/repro"],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
