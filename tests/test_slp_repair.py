"""Tests for repro.slp.repair (Re-Pair compression)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.slp.derive import text
from repro.slp.repair import repair_slp


class TestRepair:
    def test_roundtrip_simple(self):
        assert text(repair_slp("abcabcabcabc")) == "abcabcabcabc"

    def test_empty_rejected(self):
        with pytest.raises(GrammarError):
            repair_slp("")

    def test_bad_min_count_rejected(self):
        with pytest.raises(GrammarError):
            repair_slp("ab", min_count=1)

    def test_single_char(self):
        slp = repair_slp("x")
        assert text(slp) == "x"

    def test_two_chars(self):
        assert text(repair_slp("ab")) == "ab"

    def test_overlapping_pairs(self):
        # 'aaa' has overlapping (a,a) occurrences: classic Re-Pair pitfall
        for n in (2, 3, 4, 5, 6, 7, 9, 17):
            assert text(repair_slp("a" * n)) == "a" * n

    def test_compresses_repetition(self):
        doc = "abracadabra" * 64
        slp = repair_slp(doc)
        assert slp.size < len(doc) // 4
        assert text(slp) == doc

    def test_unary_compresses_logarithmically(self):
        slp = repair_slp("a" * 1024)
        assert slp.num_inner <= 12

    def test_no_pair_repeats_in_final_sequence(self):
        """After Re-Pair, no adjacent pair occurs twice in the start rule
        expansion — indirectly checked: recompressing gains nothing."""
        doc = "the cat sat on the mat the cat sat"
        once = repair_slp(doc)
        assert text(once) == doc

    def test_higher_threshold_compresses_less(self):
        doc = "abab" * 8
        loose = repair_slp(doc, min_count=2)
        strict = repair_slp(doc, min_count=20)
        assert strict.size >= loose.size
        assert text(strict) == doc


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="abcd", min_size=1, max_size=200))
def test_repair_roundtrip(doc):
    """Property: Re-Pair is lossless."""
    assert text(repair_slp(doc)) == doc
