"""Tests for repro.core.model_checking (Theorem 5.1.2: splicing + membership)."""

import random

import pytest

from repro.errors import EvaluationError
from repro.slp.construct import balanced_slp
from repro.slp.derive import text
from repro.slp.families import caterpillar_slp, power_slp
from repro.spanner.marked_words import m as make_marked
from repro.spanner.markers import cl, from_span_tuple, make_pairs, op
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple
from repro.baselines.naive import candidate_tuples, naive_model_check
from repro.core.model_checking import model_check, splice_markers

from tests.conftest import WELLFORMED_PATTERNS, random_doc


class TestSpliceMarkers:
    def test_splice_produces_marked_word(self):
        slp = balanced_slp("abab")
        pairs = make_pairs([(2, op("x")), (4, cl("x"))])
        spliced = splice_markers(slp, pairs)
        expected = make_marked("abab", pairs)
        # the spliced SLP derives exactly m(D, Λ)... up to the final position
        assert tuple(text_symbols(spliced)) == expected

    def test_splice_multiple_positions_same_leaf(self):
        slp = power_slp("a", 3)  # aaaaaaaa: every leaf is the same T_a
        pairs = make_pairs([(2, op("x")), (5, cl("x")), (7, op("y")), (8, cl("y"))])
        spliced = splice_markers(slp, pairs)
        assert tuple(text_symbols(spliced)) == make_marked("a" * 8, pairs)

    def test_splice_empty_is_identity(self):
        slp = balanced_slp("abc")
        assert splice_markers(slp, ()) is slp

    def test_splice_grows_by_depth_factor_only(self):
        slp = power_slp("ab", 20)  # tiny grammar, d = 2^21
        pairs = make_pairs([(100, op("x")), (10**6, cl("x"))])
        spliced = splice_markers(slp, pairs)
        # O(|Λ| * depth) new nonterminals
        assert spliced.num_nonterminals <= slp.num_nonterminals + 2 * (slp.depth() + 3)

    def test_splice_beyond_length_rejected(self):
        slp = balanced_slp("ab")
        with pytest.raises(EvaluationError):
            splice_markers(slp, make_pairs([(3, op("x"))]))

    def test_splice_deep_grammar_no_recursion_error(self):
        slp = caterpillar_slp(5000)
        pairs = make_pairs([(1, op("x")), (5000, cl("x"))])
        spliced = splice_markers(slp, pairs)
        assert spliced.length() == slp.length() + 2


def text_symbols(slp):
    """Symbols of a spliced SLP (mixes chars and frozensets)."""
    from repro.slp.derive import iter_symbols

    return iter_symbols(slp)


class TestModelCheck:
    def test_simple_positive_negative(self):
        # patterns are anchored: x must cover the whole a-prefix
        nfa = compile_spanner(r"(?P<x>a+)b", alphabet="ab")
        slp = balanced_slp("aab")
        assert model_check(slp, nfa, SpanTuple({"x": Span(1, 3)}))
        assert not model_check(slp, nfa, SpanTuple({"x": Span(2, 3)}))
        assert not model_check(slp, nfa, SpanTuple({"x": Span(1, 2)}))

    def test_unanchored_pattern_multiple_matches(self):
        nfa = compile_spanner(r".*(?P<x>a+)b.*", alphabet="ab")
        slp = balanced_slp("aab")
        assert model_check(slp, nfa, SpanTuple({"x": Span(1, 3)}))
        assert model_check(slp, nfa, SpanTuple({"x": Span(2, 3)}))
        assert not model_check(slp, nfa, SpanTuple({"x": Span(1, 2)}))

    def test_span_at_document_end(self):
        # markers at position d+1 exercise the padding path
        nfa = compile_spanner(r"a(?P<x>b+)", alphabet="ab")
        slp = balanced_slp("abb")
        assert model_check(slp, nfa, SpanTuple({"x": Span(2, 4)}))

    def test_invalid_span_returns_false(self):
        nfa = compile_spanner(r"(?P<x>a+)", alphabet="a")
        slp = balanced_slp("aa")
        assert not model_check(slp, nfa, SpanTuple({"x": Span(1, 9)}))

    def test_unknown_variable_returns_false(self):
        nfa = compile_spanner(r"(?P<x>a+)", alphabet="a")
        slp = balanced_slp("aa")
        assert not model_check(slp, nfa, SpanTuple({"z": Span(1, 2)}))

    def test_empty_tuple_when_doc_matches(self):
        nfa = compile_spanner(r"(?P<x>a)|b+", alphabet="ab")
        assert model_check(balanced_slp("bbb"), nfa, SpanTuple())
        assert not model_check(balanced_slp("ba"), nfa, SpanTuple())

    def test_huge_document(self):
        nfa = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        slp = power_slp("ab", 30)  # d = 2^31
        assert model_check(slp, nfa, SpanTuple({"x": Span(1, 3)}))
        assert model_check(slp, nfa, SpanTuple({"x": Span(2**30 + 1, 2**30 + 3)}))
        assert not model_check(slp, nfa, SpanTuple({"x": Span(2, 4)}))  # 'ba'

    @pytest.mark.parametrize("pattern,alphabet", WELLFORMED_PATTERNS)
    def test_matches_naive_reference(self, pattern, alphabet, compiled_patterns):
        import itertools

        nfa = compiled_patterns[pattern]
        rng = random.Random(hash(pattern) & 0xFFF)
        for _ in range(2):
            doc = random_doc(rng, alphabet, 5)
            slp = balanced_slp(doc)
            # sample every 5th candidate to keep runtime reasonable
            for tup in itertools.islice(
                candidate_tuples(nfa.variables, len(doc)), 0, None, 5
            ):
                assert model_check(slp, nfa, tup) == naive_model_check(nfa, doc, tup), (
                    doc,
                    tup,
                )
