"""Smoke tests for the benchmarks/run_all.py experiment harness."""

import importlib.util
import pathlib

import pytest

_PATH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "run_all.py"
_SPEC = importlib.util.spec_from_file_location("run_all", _PATH)
run_all = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(run_all)


def test_registry_covers_all_experiments():
    assert set(run_all.EXPERIMENTS) == {
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
    }


@pytest.mark.parametrize("key", ["E3", "E7", "E11"])
def test_cheap_experiments_produce_tables(key):
    """The fast experiments run end-to-end in quick mode and render rows."""
    table = run_all.EXPERIMENTS[key](quick=True)
    rendered = table.render()
    assert rendered.startswith("##")
    assert len(table.rows) >= 2


def test_main_with_only_selection(capsys):
    assert run_all.main(["--quick", "--only", "E3"]) == 0
    out = capsys.readouterr().out
    assert "E3" in out and "Total:" in out


def test_json_trajectory_artifact(tmp_path, capsys):
    """--json writes a machine-readable record of every rendered table."""
    import json

    path = tmp_path / "BENCH_test.json"
    assert run_all.main(["--quick", "--only", "E3", "E7", "--json", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    assert payload["schema"] == "repro-bench-trajectory/1"
    assert payload["quick"] is True
    assert payload["kernel"] in ("python", "numpy")
    assert set(payload["experiments"]) == {"E3", "E7"}
    for record in payload["experiments"].values():
        assert record["columns"] and record["rows"]
        assert record["seconds"] >= 0
    assert payload["total_seconds"] >= 0
