"""Smoke tests for the benchmarks/run_all.py experiment harness."""

import importlib.util
import json
import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, _BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


run_all = _load("run_all")
trajectory = _load("trajectory")


def test_registry_covers_all_experiments():
    assert set(run_all.EXPERIMENTS) == {
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11",
    }


@pytest.mark.parametrize("key", ["E3", "E7", "E11"])
def test_cheap_experiments_produce_tables(key):
    """The fast experiments run end-to-end in quick mode and render rows."""
    table = run_all.EXPERIMENTS[key](quick=True)
    rendered = table.render()
    assert rendered.startswith("##")
    assert len(table.rows) >= 2


def test_main_with_only_selection(capsys):
    assert run_all.main(["--quick", "--only", "E3"]) == 0
    out = capsys.readouterr().out
    assert "E3" in out and "Total:" in out


def test_json_trajectory_artifact(tmp_path, capsys):
    """--json writes a machine-readable record of every rendered table."""
    path = tmp_path / "BENCH_test.json"
    assert run_all.main(["--quick", "--only", "E3", "E7", "--json", str(path)]) == 0
    capsys.readouterr()
    payload = json.loads(path.read_text())
    assert payload["schema"] == "repro-bench-trajectory/1"
    assert payload["quick"] is True
    assert payload["kernel"] in ("python", "numpy")
    assert set(payload["experiments"]) == {"E3", "E7"}
    for record in payload["experiments"].values():
        assert record["columns"] and record["rows"]
        assert record["seconds"] >= 0
    assert payload["total_seconds"] >= 0


def _snapshot(seconds):
    return {
        "schema": trajectory.SCHEMA,
        "python": "3.12", "platform": "test", "kernel": "python",
        "quick": True,
        "experiments": {"E3": {"seconds": seconds}},
        "total_seconds": seconds,
    }


def test_trajectory_tolerates_gaps_and_corrupt_predecessors(tmp_path, capsys):
    """The diff walks back to the nearest *loadable* snapshot: numbering
    gaps are fine and a corrupt intermediate is skipped with a warning,
    not a hard exit."""
    (tmp_path / "BENCH_2.json").write_text(json.dumps(_snapshot(1.0)))
    (tmp_path / "BENCH_5.json").write_text('{"schema": "torn')  # corrupt
    (tmp_path / "BENCH_8.json").write_text(json.dumps(_snapshot(1.1)))
    assert trajectory.main(["--dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "BENCH_2.json -> BENCH_8.json" in captured.out
    assert "skipping unreadable snapshot BENCH_5.json" in captured.err


def test_trajectory_all_predecessors_corrupt_is_baseline_only(tmp_path, capsys):
    (tmp_path / "BENCH_5.json").write_text("not json")
    (tmp_path / "BENCH_8.json").write_text(json.dumps(_snapshot(1.0)))
    assert trajectory.main(["--dir", str(tmp_path)]) == 0
    assert "baseline only" in capsys.readouterr().out


def test_trajectory_corrupt_latest_is_still_an_error(tmp_path, capsys):
    (tmp_path / "BENCH_2.json").write_text(json.dumps(_snapshot(1.0)))
    (tmp_path / "BENCH_8.json").write_text("not json")
    assert trajectory.main(["--dir", str(tmp_path)]) == 2
