"""Tests for the unified Session API (repro.session).

The contract under test: a :class:`Session` is one facade over the
engine, the parallel pool and the service daemon, and every backend
returns *the same values in the same order* as the serial engine.  The
daemon backend's deeper cross-checks live in ``tests/test_service.py``
and the differential harness; here the focus is the facade itself —
configuration resolution, routing, Engine-compatible shapes, and the
compatibility exports.
"""

import pickle

import pytest

import repro
from repro.engine import Engine, EngineConfig, run_batch
from repro.engine.spec import SpannerSpec
from repro.session import Session, SessionConfig, connect
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp
from repro.spanner.regex import compile_spanner
from repro.spanner.spans import Span, SpanTuple


def ab_spanner(pattern=r".*(?P<x>a+)b.*"):
    return compile_spanner(pattern, alphabet="ab")


@pytest.fixture
def docs():
    return [balanced_slp(d) for d in ("aabab", "bbbb", "aab", "ababab")]


# -- SessionConfig ------------------------------------------------------------


class TestSessionConfig:
    def test_defaults_are_in_process_serial(self):
        config = SessionConfig()
        assert config.jobs == 1
        assert config.socket_path is None
        assert config.structural_keys is None  # auto

    def test_structural_keys_auto_resolution(self):
        auto = SessionConfig()
        # serial in-process: identity keys (cheapest correct choice)
        assert auto.resolved_structural_keys(cross_process=False) is False
        # anything crossing a process boundary: digests, always
        assert auto.resolved_structural_keys(cross_process=True) is True
        # explicit settings are never overridden
        assert SessionConfig(structural_keys=True).resolved_structural_keys(
            False
        ) is True
        assert SessionConfig(structural_keys=False).resolved_structural_keys(
            True
        ) is False

    def test_engine_config_carries_every_engine_knob(self, tmp_path):
        config = SessionConfig(
            store_dir=str(tmp_path / "store"),
            kernel="python",
            balance=False,
            end_symbol="$",
            max_documents=7,
            max_spanners=9,
            max_preprocessings=11,
        )
        ec = config.engine_config(cross_process=True)
        assert ec == EngineConfig(
            store_dir=str(tmp_path / "store"),
            structural_keys=True,
            balance=False,
            end_symbol="$",
            max_documents=7,
            max_spanners=9,
            max_preprocessings=11,
            kernel="python",
        )

    def test_config_is_picklable(self):
        config = SessionConfig(jobs=4, kernel="python", socket_path="/x.sock")
        assert pickle.loads(pickle.dumps(config)) == config


# -- connect() ----------------------------------------------------------------


class TestConnect:
    def test_default_is_in_process(self):
        session = connect()
        assert isinstance(session, Session)
        assert session.backend == "in-process"

    def test_keyword_overrides_reach_the_config(self, tmp_path):
        session = connect(store_dir=str(tmp_path), jobs=3, kernel="python")
        assert session.config.store_dir == str(tmp_path)
        assert session.config.jobs == 3

    def test_full_config_plus_overrides(self):
        base = SessionConfig(jobs=2)
        session = connect(config=base, kernel="python")
        assert session.config.jobs == 2
        assert session.config.kernel == "python"
        assert base.kernel is None  # the original is untouched

    def test_socket_path_selects_daemon_backend(self, tmp_path):
        # No daemon is running: the backend must still construct (the
        # client connects lazily) and identify itself.
        session = connect(str(tmp_path / "none.sock"))
        assert session.backend == "daemon"
        session.close()


# -- in-process backend vs the engine ----------------------------------------


class TestInProcessSession:
    def test_single_pair_tasks_match_engine(self, docs):
        spanner = ab_spanner()
        engine = Engine()
        with connect() as session:
            for slp in docs:
                assert session.evaluate(spanner, slp) == engine.evaluate(
                    spanner, slp
                )
                assert session.count(spanner, slp) == engine.count(spanner, slp)
                assert session.is_nonempty(spanner, slp) == engine.is_nonempty(
                    spanner, slp
                )
                assert list(session.enumerate(spanner, slp)) == list(
                    engine.enumerate(spanner, slp)
                )

    def test_enumerate_limit(self, docs):
        spanner = ab_spanner()
        with connect() as session:
            full = list(session.enumerate(spanner, docs[0]))
            capped = list(session.enumerate(spanner, docs[0], limit=1))
            assert capped == full[:1]
            # negative limits clamp to "nothing" (as run_task does on
            # every other backend), never an islice ValueError
            assert list(session.enumerate(spanner, docs[0], limit=-1)) == []

    def test_model_check(self, docs):
        spanner = ab_spanner()
        with connect() as session:
            hits = session.evaluate(spanner, docs[0])
            for tup in hits:
                assert session.model_check(spanner, docs[0], tup)
            assert not session.model_check(
                spanner, docs[0], SpanTuple({"x": Span(1, 1)})
            )

    def test_ranked_access(self, docs):
        spanner = ab_spanner()
        with connect() as session:
            ranked = session.ranked(spanner, docs[0])
            expected = list(session.enumerate(spanner, docs[0]))
            assert [
                ranked.select_tuple(k) for k in range(len(expected))
            ] == expected

    def test_corpus_many_batch_match_run_batch(self, docs):
        spanners = [ab_spanner(), ab_spanner(r"(?P<x>b+)a")]
        serial = run_batch(spanners, docs, task="count")
        with connect() as session:
            batch = session.batch(spanners, docs, task="count")
            assert [
                (i.document_index, i.spanner_index, i.result) for i in batch
            ] == [(i.document_index, i.spanner_index, i.result) for i in serial]
            assert session.corpus(spanners[0], docs, task="count") == [
                i.result for i in serial if i.spanner_index == 0
            ]
            assert session.many(spanners, docs[0], task="count") == [
                i.result for i in serial if i.document_index == 0
            ]

    def test_engine_compatible_wrappers(self, docs):
        spanner = ab_spanner()
        engine = Engine()
        with connect() as session:
            assert session.evaluate_corpus(spanner, docs) == engine.evaluate_corpus(
                spanner, docs
            )
            assert session.count_corpus(spanner, docs) == engine.count_corpus(
                spanner, docs
            )
            assert session.evaluate_many([spanner], docs[0]) == [
                engine.evaluate(spanner, docs[0])
            ]
            assert session.count_many([spanner], docs[0]) == [
                engine.count(spanner, docs[0])
            ]

    def test_accepts_paths_specs_and_slps(self, docs, tmp_path):
        path = str(tmp_path / "d.slpb")
        slp_io.save_binary(docs[0], path)
        spec = SpannerSpec(pattern=r".*(?P<x>a+)b.*", alphabet="ab")
        with connect() as session:
            expected = session.count(ab_spanner(), docs[0])
            assert session.count(spec, path) == expected
            assert session.corpus(spec, [path, docs[1]], task="count") == [
                expected,
                session.count(spec, docs[1]),
            ]

    def test_jobs_routes_batches_through_the_pool(self, docs):
        spanner = ab_spanner()
        serial = Engine().evaluate_corpus(spanner, docs)
        with connect(jobs=2, timeout=120) as session:
            assert session.corpus(spanner, docs) == serial
            # single-pair calls stay on the in-process engine regardless
            assert session.count(spanner, docs[0]) == len(serial[0])

    def test_unknown_task_rejected(self, docs):
        with connect() as session:
            with pytest.raises(ValueError, match="unknown batch task"):
                session.corpus(ab_spanner(), docs, task="bogus")

    def test_stats_shape_and_repr(self, docs):
        with connect() as session:
            session.count(ab_spanner(), docs[0])
            stats = session.stats()
            assert stats["backend"] == "in-process"
            assert stats["cache"]["preprocessings"].misses >= 1
            assert "in-process" in repr(session)

    def test_store_dir_round_trip(self, docs, tmp_path):
        store = str(tmp_path / "store")
        spanner = ab_spanner()
        with connect(store_dir=store, structural_keys=True) as session:
            expected = session.count(spanner, docs[0])
        with connect(store_dir=store, structural_keys=True) as fresh:
            assert fresh.count(spanner, balanced_slp("aabab")) == expected
            assert fresh.stats()["store"].hits >= 1


# -- export hygiene -----------------------------------------------------------


class TestExports:
    def test_session_api_is_exported(self):
        assert repro.connect is connect
        assert repro.Session is Session
        assert repro.SessionConfig is SessionConfig
        for name in ("connect", "Session", "SessionConfig"):
            assert name in repro.__all__

    def test_compatibility_shims_still_import(self):
        # The pre-Session surfaces must keep working unchanged.
        from repro import Engine as E
        from repro import parallel_corpus, parallel_many, evaluate_corpus

        assert E is Engine
        assert callable(parallel_corpus) and callable(parallel_many)
        assert callable(evaluate_corpus)
        for name in ("Engine", "parallel_corpus", "parallel_many"):
            assert name in repro.__all__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
