"""Unit tests for repro.slp.derive (decompression and random access)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompressionLimitExceeded
from repro.slp.construct import balanced_slp
from repro.slp.derive import (
    char_at,
    count_symbol,
    decompress,
    iter_symbols,
    leaf_path,
    substring,
    text,
)
from repro.slp.families import example_4_2, power_slp


class TestDecompression:
    def test_text_example(self):
        assert text(example_4_2()) == "aabccaabaa"

    def test_decompress_returns_tuple(self):
        assert decompress(balanced_slp("abc")) == ("a", "b", "c")

    def test_iter_symbols_streams(self):
        slp = example_4_2()
        assert "".join(iter_symbols(slp)) == "aabccaabaa"

    def test_iter_symbols_from_nonterminal(self):
        slp = example_4_2()
        assert "".join(iter_symbols(slp, "C")) == "aab"

    def test_limit_enforced(self):
        slp = power_slp("a", 30)  # 2^30 symbols
        with pytest.raises(DecompressionLimitExceeded):
            decompress(slp, max_length=1000)

    def test_limit_allows_exact_size(self):
        slp = balanced_slp("abcd")
        assert len(decompress(slp, max_length=4)) == 4


class TestRandomAccess:
    def test_char_at_matches_text(self):
        slp = example_4_2()
        doc = text(slp)
        for i, ch in enumerate(doc):
            assert char_at(slp, i) == ch

    def test_char_at_out_of_range(self):
        slp = example_4_2()
        with pytest.raises(IndexError):
            char_at(slp, 10)
        with pytest.raises(IndexError):
            char_at(slp, -1)

    def test_char_at_huge_document(self):
        slp = power_slp("abc", 30)  # 3 * 2^30 symbols, never materialised
        assert char_at(slp, 0) == "a"
        assert char_at(slp, 1) == "b"
        assert char_at(slp, 3 * 2**30 - 1) == "c"
        assert char_at(slp, 3 * 10**9) == {0: "a", 1: "b", 2: "c"}[3 * 10**9 % 3]

    def test_char_at_subtree_root(self):
        slp = example_4_2()
        assert char_at(slp, 0, root="C") == "a"
        assert char_at(slp, 2, root="C") == "b"


class TestSubstring:
    def test_substring_matches_slicing(self):
        slp = example_4_2()
        doc = text(slp)
        for i in range(len(doc) + 1):
            for j in range(i, len(doc) + 1):
                assert "".join(substring(slp, i, j)) == doc[i:j]

    def test_substring_bad_range(self):
        slp = example_4_2()
        with pytest.raises(IndexError):
            substring(slp, 5, 3)
        with pytest.raises(IndexError):
            substring(slp, 0, 11)

    def test_substring_of_huge_document(self):
        slp = power_slp("ab", 40)
        assert "".join(substring(slp, 2**40, 2**40 + 6)) == "ababab"

    def test_substring_limit(self):
        slp = power_slp("ab", 25)
        with pytest.raises(DecompressionLimitExceeded):
            substring(slp, 0, 2**20, max_length=100)


class TestCounting:
    def test_count_symbol(self):
        slp = example_4_2()  # aabccaabaa
        assert count_symbol(slp, "a") == 6
        assert count_symbol(slp, "b") == 2
        assert count_symbol(slp, "c") == 2
        assert count_symbol(slp, "z") == 0

    def test_count_on_huge_document(self):
        slp = power_slp("ab", 50)
        assert count_symbol(slp, "a") == 2**50


class TestLeafPath:
    def test_path_starts_at_root_ends_at_leaf(self):
        slp = example_4_2()
        path = leaf_path(slp, 0)
        assert path[0] == "S0"
        assert slp.is_leaf(path[-1])
        assert slp.terminal(path[-1]) == "a"

    def test_path_length_bounded_by_depth(self):
        slp = power_slp("ab", 15)
        for index in (0, 17, 2**15):
            assert len(leaf_path(slp, index)) <= slp.depth()

    def test_path_identifies_position(self):
        slp = example_4_2()
        doc = text(slp)
        for i in range(len(doc)):
            assert slp.terminal(leaf_path(slp, i)[-1]) == doc[i]


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="abc", min_size=1, max_size=60), st.data())
def test_random_access_agrees_with_python(doc, data):
    """Property: char_at/substring behave exactly like string indexing."""
    slp = balanced_slp(doc)
    i = data.draw(st.integers(min_value=0, max_value=len(doc) - 1))
    j = data.draw(st.integers(min_value=i, max_value=len(doc)))
    assert char_at(slp, i) == doc[i]
    assert "".join(substring(slp, i, j)) == doc[i:j]
    assert text(slp) == doc
