"""Round-trip and corruption fuzzing of the ``repro-slpb`` binary format."""

from __future__ import annotations

import random

import pytest

from repro.errors import GrammarError
from repro.slp import io as slp_io
from repro.slp.construct import balanced_slp
from repro.slp.derive import text
from repro.slp.families import (
    caterpillar_slp,
    example_4_1,
    example_4_2,
    fibonacci_slp,
    power_slp,
    random_slp,
    repeated_slp,
    thue_morse_slp,
)
from repro.slp.grammar import SLP
from repro.store.binary import (
    BinarySLPFile,
    decode_slp,
    encode_slp,
    load_binary,
    save_binary,
)


def single_terminal_slp() -> SLP:
    return SLP({}, {("T", "z"): "z"}, ("T", "z"))


def deep_chain_slp() -> SLP:
    return caterpillar_slp(300)


FAMILY_GRAMMARS = [
    single_terminal_slp,
    deep_chain_slp,
    example_4_1,
    example_4_2,
    lambda: fibonacci_slp(12),
    lambda: thue_morse_slp(6),
    lambda: power_slp("abc", 5),
    lambda: repeated_slp("abz", 13),
    lambda: balanced_slp("the quick brown fox"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("build", FAMILY_GRAMMARS)
    def test_families_survive_roundtrip(self, build):
        slp = build()
        back = decode_slp(encode_slp(slp))
        assert text(back) == text(slp)
        assert back.structural_digest() == slp.structural_digest()
        assert slp.same_structure(back)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_slps_survive_roundtrip(self, seed):
        rng = random.Random(seed)
        slp = random_slp(
            rng.randint(1, 40),
            alphabet="ab" if seed % 2 else "abcd",
            seed=seed,
            max_length=10_000,
        )
        back = decode_slp(encode_slp(slp))
        assert text(back) == text(slp)
        assert back.structural_digest() == slp.structural_digest()

    def test_roundtrip_through_file(self, tmp_path):
        slp = fibonacci_slp(9)
        path = str(tmp_path / "fib.slpb")
        save_binary(slp, path)
        assert text(load_binary(path)) == text(slp)

    def test_digest_is_naming_independent(self):
        a = example_4_2()
        renamed = SLP(
            inner_rules={
                f"Q_{n}": tuple(f"Q_{c}" for c in pair)
                for n, pair in a.inner_rules.items()
            },
            leaf_rules={f"Q_{n}": s for n, s in a.leaf_rules.items()},
            start=f"Q_{a.start}",
        )
        assert renamed.structural_digest() == a.structural_digest()
        assert encode_slp(renamed) == encode_slp(a)  # byte-identical encodings

    def test_digest_differs_for_different_structure(self):
        assert (
            balanced_slp("abab").structural_digest()
            != balanced_slp("abba").structural_digest()
        )

    def test_automaton_digest_ignores_arc_insertion_order(self):
        from repro.spanner.automaton import SpannerNFA

        forward = SpannerNFA(2, {0: {"a": {1}, "b": {0}}}, [1])
        backward = SpannerNFA(2, {0: {"b": {0}, "a": {1}}}, [1])
        assert forward.structural_digest() == backward.structural_digest()
        different = SpannerNFA(2, {0: {"b": {1}, "a": {0}}}, [1])
        assert forward.structural_digest() != different.structural_digest()

    def test_embedded_digest_is_not_trusted(self):
        # A crafted payload whose header digest belongs to a *different*
        # grammar (CRC re-sealed, so it validates) must not poison
        # structural keys: the decoded SLP hashes its own structure.
        import struct
        import zlib

        victim = balanced_slp("abab")
        data = bytearray(encode_slp(balanced_slp("abba")))
        data[10:26] = bytes.fromhex(victim.structural_digest())
        struct.pack_into("<I", data, len(data) - 4, zlib.crc32(data[:-4]))
        crafted = decode_slp(bytes(data))
        assert crafted.structural_digest() != victim.structural_digest()
        with pytest.raises(GrammarError, match="digest mismatch"):
            decode_slp(bytes(data), verify_digest=True)

    def test_unreachable_rules_are_dropped(self):
        slp = SLP(
            {"S": (("T", "a"), ("T", "b")), "junk": (("T", "a"), ("T", "a"))},
            {("T", "a"): "a", ("T", "b"): "b"},
            "S",
        )
        back = decode_slp(encode_slp(slp))
        assert text(back) == "ab"
        assert back.num_inner == 1
        assert back.structural_digest() == slp.structural_digest()


class TestLazyAccess:
    def test_mmap_file_decodes_rules_lazily(self, tmp_path):
        slp = power_slp("ab", 6)
        path = str(tmp_path / "pow.slpb")
        save_binary(slp, path)
        with BinarySLPFile(path) as f:
            assert f.num_nodes == f.num_terminals + f.num_rules
            assert f.digest == slp.structural_digest()
            left, right = f.rule(f.num_rules - 1)
            assert left < f.num_nodes - 1 and right < f.num_nodes - 1
            assert {f.terminal(k) for k in range(f.num_terminals)} == {"a", "b"}
            assert text(f.to_slp()) == text(slp)

    def test_out_of_range_access_raises_grammar_error(self, tmp_path):
        path = str(tmp_path / "g.slpb")
        save_binary(balanced_slp("ab"), path)
        with BinarySLPFile(path) as f:
            with pytest.raises(GrammarError):
                f.rule(f.num_rules)
            with pytest.raises(GrammarError):
                f.terminal(f.num_terminals)


class TestCorruption:
    """Every malformed payload raises GrammarError — never a raw traceback."""

    def _payload(self) -> bytes:
        return encode_slp(fibonacci_slp(8))

    def test_wrong_magic(self):
        data = self._payload()
        with pytest.raises(GrammarError, match="magic"):
            decode_slp(b"NOTSLP" + data[6:])

    def test_unsupported_version(self):
        data = bytearray(self._payload())
        data[6] = 99
        with pytest.raises(GrammarError, match="version"):
            decode_slp(bytes(data))

    @pytest.mark.parametrize("cut", [0, 5, 41, 42, -9, -1])
    def test_truncated(self, cut):
        data = self._payload()
        with pytest.raises(GrammarError):
            decode_slp(data[:cut] if cut >= 0 else data[:cut])

    def test_trailing_garbage(self):
        with pytest.raises(GrammarError):
            decode_slp(self._payload() + b"\x00")

    @pytest.mark.parametrize("seed", range(25))
    def test_random_bitflips_never_traceback(self, seed):
        rng = random.Random(seed)
        data = bytearray(self._payload())
        for _ in range(rng.randint(1, 4)):
            pos = rng.randrange(len(data))
            data[pos] ^= 1 << rng.randrange(8)
        try:
            back = decode_slp(bytes(data))
        except GrammarError:
            return  # detected, as required
        # a flip that cancelled out (or hit nothing load-bearing) must
        # still have produced the original grammar — the CRC + digest
        # make silently-wrong decodes impossible
        assert text(back) == text(fibonacci_slp(8))

    def test_random_garbage_never_traceback(self):
        rng = random.Random(404)
        for length in (0, 1, 10, 42, 100):
            blob = bytes(rng.randrange(256) for _ in range(length))
            with pytest.raises(GrammarError):
                decode_slp(blob)

    def test_corrupt_file_via_load_file_raises_grammar_error(self, tmp_path):
        path = tmp_path / "bad.slpb"
        data = bytearray(encode_slp(balanced_slp("abc")))
        data[-1] ^= 0xFF  # break the CRC
        path.write_bytes(bytes(data))
        with pytest.raises(GrammarError):
            slp_io.load_file(str(path))

    def test_non_utf8_non_magic_file_raises_grammar_error(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\xff\xfe\x00garbage")
        with pytest.raises(GrammarError):
            slp_io.load_file(str(path))
