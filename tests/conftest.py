"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random
import shutil
import tempfile

import pytest

from repro.slp.construct import balanced_slp, bisection_slp
from repro.slp.lz import lz_slp
from repro.slp.repair import repair_slp
from repro.spanner.regex import compile_spanner

#: Well-formed (pattern, alphabet) pairs reused across correctness tests.
WELLFORMED_PATTERNS = [
    (r"(?P<x>a+)b", "ab"),
    (r"[bc]*(?P<x>a).*(?P<y>c+).*", "abc"),
    (r".*(?P<x>ab?).*", "ab"),
    (r"(?P<x>a*)(?P<y>b*)", "ab"),
    (r"(?P<x>(?P<y>a)b)c", "abc"),
    (r"a(?P<x>.*)b", "ab"),
    (r"(?P<x>a)|b*", "ab"),
    (r"(a|b)*(?P<x>ab)(a|b)*", "ab"),
    (r"(?P<x>.)(?P<y>.).*", "ab"),
    (r".*(?P<x>aa|bb).*", "ab"),
    (r"(?P<x>a{2,4})b*", "ab"),
    (r"b*(?P<x>a)b*(?P<y>a)?b*", "ab"),
]

#: All SLP builders that should agree on the derived text.
SLP_BUILDERS = [balanced_slp, bisection_slp, repair_slp, lz_slp]


def random_doc(rng: random.Random, alphabet: str, max_len: int, min_len: int = 1) -> str:
    return "".join(rng.choice(alphabet) for _ in range(rng.randint(min_len, max_len)))


@pytest.fixture
def service_socket():
    """A short-lived unix socket path for service daemon tests.

    Deliberately *not* under pytest's tmp_path: ``sun_path`` is capped
    at ~107 bytes and pytest's nested tmp directories can blow through
    that, failing with a misleading bind error.
    """
    directory = tempfile.mkdtemp(prefix="rsvc-")
    try:
        yield os.path.join(directory, "s.sock")
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@pytest.fixture(scope="session")
def compiled_patterns():
    """Compiled spanner NFAs for all well-formed patterns (session-cached)."""
    return {
        pattern: compile_spanner(pattern, alphabet=alphabet)
        for pattern, alphabet in WELLFORMED_PATTERNS
    }
