"""Tests for repro.slp.lz (suffix array, LZ77, LZ->SLP conversion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.slp.derive import text
from repro.slp.lz import (
    Copy,
    Literal,
    _RangeMin,
    lcp_array,
    lz77_factorize,
    lz_decompress,
    lz_slp,
    lz_to_slp,
    suffix_array,
)


def brute_suffix_array(s):
    return sorted(range(len(s)), key=lambda i: s[i:])


class TestSuffixArray:
    def test_known_example(self):
        # classic: banana
        assert list(suffix_array("banana")) == brute_suffix_array("banana")

    def test_empty(self):
        assert len(suffix_array("")) == 0

    def test_single(self):
        assert list(suffix_array("a")) == [0]

    def test_unary(self):
        assert list(suffix_array("aaaa")) == [3, 2, 1, 0]

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="abc", min_size=1, max_size=80))
    def test_matches_brute_force(self, s):
        assert list(suffix_array(s)) == brute_suffix_array(s)


class TestLcp:
    def test_banana(self):
        s = "banana"
        sa = suffix_array(s)
        lcp = lcp_array(s, sa)
        # verify against definition
        for r in range(1, len(s)):
            a, b = s[sa[r] :], s[sa[r - 1] :]
            common = 0
            while common < min(len(a), len(b)) and a[common] == b[common]:
                common += 1
            assert lcp[r] == common

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="ab", min_size=2, max_size=60))
    def test_lcp_definition(self, s):
        sa = suffix_array(s)
        lcp = lcp_array(s, sa)
        for r in range(1, len(s)):
            a, b = s[sa[r] :], s[sa[r - 1] :]
            common = 0
            while common < min(len(a), len(b)) and a[common] == b[common]:
                common += 1
            assert lcp[r] == common


class TestRangeMin:
    def test_queries(self):
        values = [5, 2, 7, 1, 9, 3]  # plain list: numpy-optional
        rmq = _RangeMin(values)
        for lo in range(6):
            for hi in range(lo + 1, 7):
                assert rmq.query(lo, hi) == min(values[lo:hi])

    def test_bad_range(self):
        rmq = _RangeMin([1, 2])
        with pytest.raises(IndexError):
            rmq.query(1, 1)


class TestFactorize:
    def test_paper_style_example(self):
        factors = lz77_factorize("aabaab")
        assert factors == [Literal("a"), Copy(0, 1), Literal("b"), Copy(0, 3)]

    def test_empty(self):
        assert lz77_factorize("") == []

    def test_decompress_roundtrip(self):
        for doc in ("a", "ab", "aaaa", "abcabcabc", "mississippi"):
            assert lz_decompress(lz77_factorize(doc)) == doc

    def test_self_referential_factor(self):
        # a^8: factorisation is 'a' then one overlapping copy of length 7
        factors = lz77_factorize("a" * 8)
        assert factors[0] == Literal("a")
        assert factors[1] == Copy(0, 7)  # source+length > position: overlap

    def test_factor_count_on_periodic(self):
        factors = lz77_factorize("ab" * 1000)
        assert len(factors) <= 5

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="abc", min_size=1, max_size=150))
    def test_factorize_roundtrip(self, doc):
        assert lz_decompress(lz77_factorize(doc)) == doc


class TestLzToSlp:
    def test_simple(self):
        assert text(lz_slp("abcabcabc")) == "abcabcabc"

    def test_self_referential_unrolling(self):
        for n in (2, 3, 7, 8, 100, 1000):
            assert text(lz_slp("a" * n)) == "a" * n

    def test_unary_size_logarithmic(self):
        slp = lz_slp("a" * 2**14)
        assert slp.size <= 200

    def test_grammar_is_balanced(self):
        import math

        slp = lz_slp("abracadabra" * 100)
        assert slp.depth() <= 1.4405 * math.log2(slp.length() + 2) + 3

    def test_rejects_empty_factorisation(self):
        from repro.errors import GrammarError

        with pytest.raises(GrammarError):
            lz_to_slp([])

    def test_rejects_dangling_copy(self):
        from repro.errors import GrammarError

        with pytest.raises(GrammarError):
            lz_to_slp([Literal("a"), Copy(5, 2)])

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="abcd", min_size=1, max_size=200))
    def test_lz_slp_roundtrip(self, doc):
        """Property: the full LZ -> SLP pipeline is lossless."""
        assert text(lz_slp(doc)) == doc
