"""Tests for repro.slp.edits (compressed document updates)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.slp.balance import depth_bound
from repro.slp.construct import balanced_slp
from repro.slp.derive import text
from repro.slp.edits import (
    SlpEditor,
    append_text,
    concat_slp,
    delete_range,
    extract_slp,
    insert_text,
    prepend_text,
    replace_range,
)
from repro.slp.families import power_slp


class TestFunctional:
    def test_concat(self):
        got = concat_slp(balanced_slp("abc"), balanced_slp("defg"))
        assert text(got) == "abcdefg"

    def test_append_prepend(self):
        slp = balanced_slp("middle")
        assert text(append_text(slp, "!")) == "middle!"
        assert text(prepend_text(slp, ">>")) == ">>middle"

    def test_insert(self):
        slp = balanced_slp("helloworld")
        assert text(insert_text(slp, 5, ", ")) == "hello, world"
        assert text(insert_text(slp, 0, "X")) == "Xhelloworld"
        assert text(insert_text(slp, 10, "X")) == "helloworldX"

    def test_delete(self):
        slp = balanced_slp("abcdef")
        assert text(delete_range(slp, 1, 4)) == "aef"
        assert text(delete_range(slp, 0, 3)) == "def"
        assert text(delete_range(slp, 3, 6)) == "abc"
        assert text(delete_range(slp, 2, 2)) == "abcdef"

    def test_delete_everything_rejected(self):
        with pytest.raises(GrammarError):
            delete_range(balanced_slp("abc"), 0, 3)

    def test_replace(self):
        slp = balanced_slp("hello world")
        assert text(replace_range(slp, 6, 11, "there")) == "hello there"
        assert text(replace_range(slp, 0, 5, "goodbye")) == "goodbye world"

    def test_extract(self):
        slp = balanced_slp("abcdefgh")
        assert text(extract_slp(slp, 2, 6)) == "cdef"

    def test_bad_ranges(self):
        slp = balanced_slp("abc")
        with pytest.raises(IndexError):
            delete_range(slp, 2, 5)
        with pytest.raises(IndexError):
            insert_text(slp, 4, "x")
        with pytest.raises(GrammarError):
            extract_slp(slp, 1, 1)


class TestCompressedScale:
    def test_extract_from_terabyte_document(self):
        big = power_slp("ab", 40)  # d = 2^41
        window = extract_slp(big, 2**40 - 3, 2**40 + 3)
        assert text(window) == "bababa"

    def test_edit_never_materialises(self):
        big = power_slp("ab", 40)
        edited = replace_range(big, 10**12, 10**12 + 4, "XYXY")
        assert edited.length() == big.length()
        assert edited.depth() <= depth_bound(edited.length())
        assert text(extract_slp(edited, 10**12 - 2, 10**12 + 6)) == "abXYXYab"

    def test_concat_of_huge_documents(self):
        a = power_slp("ab", 35)
        b = power_slp("ba", 35)
        both = concat_slp(a, b)
        assert both.length() == a.length() + b.length()
        assert both.depth() <= depth_bound(both.length())


class TestEditor:
    def test_session_of_edits(self):
        editor = SlpEditor(balanced_slp("the quick fox"))
        editor.insert(9, " brown")
        editor.append(" jumps")
        editor.replace(0, 3, "a")
        assert text(editor.to_slp()) == "a quick brown fox jumps"

    def test_editor_length_tracks(self):
        editor = SlpEditor(balanced_slp("abc"))
        assert editor.length == 3
        editor.append("de")
        assert editor.length == 5
        editor.delete(0, 2)
        assert editor.length == 3

    def test_editor_concat_other_slp(self):
        editor = SlpEditor(balanced_slp("left"))
        editor.concat(balanced_slp("right"))
        assert text(editor.to_slp()) == "leftright"

    def test_empty_word_edits_rejected(self):
        editor = SlpEditor(balanced_slp("abc"))
        with pytest.raises(GrammarError):
            editor.append("")
        with pytest.raises(GrammarError):
            editor.replace(0, 1, "")

    def test_evaluation_after_edits(self):
        """The motivating scenario: update, then re-run the spanner."""
        from repro.core.evaluator import CompressedSpannerEvaluator
        from repro.spanner.regex import compile_spanner

        spanner = compile_spanner(r".*(?P<x>ab).*", alphabet="ab")
        editor = SlpEditor(balanced_slp("aaaa"))
        before = CompressedSpannerEvaluator(spanner, editor.to_slp())
        assert not before.is_nonempty()
        editor.insert(2, "b")
        after = CompressedSpannerEvaluator(spanner, editor.to_slp())
        assert after.count() == 1


@settings(max_examples=80, deadline=None)
@given(st.text(alphabet="abc", min_size=1, max_size=40), st.data())
def test_edits_match_python_strings(doc, data):
    """Property: every edit behaves exactly like the string operation."""
    slp = balanced_slp(doc)
    i = data.draw(st.integers(min_value=0, max_value=len(doc)))
    j = data.draw(st.integers(min_value=i, max_value=len(doc)))
    word = data.draw(st.text(alphabet="abc", min_size=1, max_size=8))
    assert text(insert_text(slp, i, word)) == doc[:i] + word + doc[i:]
    assert text(replace_range(slp, i, j, word)) == doc[:i] + word + doc[j:]
    if i < j:
        assert text(extract_slp(slp, i, j)) == doc[i:j]
    if doc[:i] + doc[j:]:
        assert text(delete_range(slp, i, j)) == doc[:i] + doc[j:]
