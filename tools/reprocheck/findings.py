"""Findings and the per-line suppression-tag grammar.

A finding is one rule violation at one source location.  Violations are
suppressed — and for the ``broad-except`` rule, *satisfied* — by a tag
comment naming the rule and giving a reason::

    except Exception:  # repro-check: broad-except — worker fault barrier
    import numpy       # repro-check: numpy-containment — bench-only module

The tag must carry a nonempty reason after the dash (``—``, ``--`` or
``-``); a bare ``# repro-check: rule`` is itself reported, so silencing a
rule always costs a written justification.  A tag on its own
comment-only line suppresses findings on the line directly below it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

#: ``# repro-check: rule[, rule...] — reason`` (reason required).
_TAG = re.compile(
    r"#\s*repro-check:\s*(?P<rules>[a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)"
    r"(?:\s*(?:—|--|-)\s*(?P<reason>\S.*))?"
)

_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One rule violation: ``path:line  [rule]  message``."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_suppressions(
    source_lines: Sequence[str],
) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Per-line suppression tags of one file (1-indexed line numbers).

    Returns ``(tags, malformed)``: ``tags[n]`` is the set of rule names a
    finding on line ``n`` may be suppressed by (tags on comment-only
    lines cover the following line), and ``malformed`` reports tags with
    a missing reason — a suppression must always say *why*.
    """
    tags: Dict[int, Set[str]] = {}
    malformed: List[Finding] = []
    for index, text in enumerate(source_lines, start=1):
        match = _TAG.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        reason = match.group("reason")
        if not reason:
            malformed.append(
                Finding(
                    rule="suppression-format",
                    path="",
                    line=index,
                    message=(
                        "suppression tag needs a reason: "
                        "'# repro-check: <rule> — <why>'"
                    ),
                )
            )
            continue
        tags.setdefault(index, set()).update(rules)
        if _COMMENT_ONLY.match(text):
            # A standalone tag comment covers the line below it.
            tags.setdefault(index + 1, set()).update(rules)
    return tags, malformed


def apply_suppressions(
    findings: Sequence[Finding], tags: Dict[int, Set[str]]
) -> List[Finding]:
    """The findings that survive the file's suppression tags."""
    return [f for f in findings if f.rule not in tags.get(f.line, ())]
