"""Checker configuration: built-in defaults + ``[tool.reprocheck]``.

The defaults below *are* this repository's policy; ``pyproject.toml``
only needs entries that differ (the committed one restates the policy
explicitly so it is reviewable in one place).  Paths are repo-relative
with forward slashes.
"""

from __future__ import annotations

import os
import tomllib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CheckConfig:
    """Everything the rules need to know about the tree they check."""

    #: Repo root every path in findings / policy lists is relative to.
    root: str = "."

    # -- numpy-containment ------------------------------------------------
    #: The only modules allowed an *unguarded* module-level numpy import.
    numpy_unguarded_allowed: Tuple[str, ...] = (
        "src/repro/core/kernels/numpy_kernel.py",
    )
    #: Modules allowed a guarded (try/ImportError) or lazy (in-function)
    #: numpy import.  Unguarded-allowed modules are implicitly included.
    numpy_guarded_allowed: Tuple[str, ...] = (
        "src/repro/core/kernels/__init__.py",
        "src/repro/slp/lz.py",
    )

    # -- process-boundary -------------------------------------------------
    #: Types that may cross a worker process boundary (plus builtins).
    spec_whitelist: Tuple[str, ...] = (
        "EngineConfig",
        "SpannerSpec",
        "TaskSpec",
        "Shard",
        "ShardPlan",
    )
    #: Worker entry points whose signatures the rule audits.
    worker_entry_points: Tuple[str, ...] = ("worker_main", "service_worker_main")
    #: Fleet hook methods whose return expressions the rule audits.
    boundary_hooks: Tuple[str, ...] = ("_worker_args", "_shard_message")
    #: ``self.<attr>`` values a hook may ship (must be spec-typed fields).
    boundary_safe_self_attrs: Tuple[str, ...] = ("config",)

    # -- protocol-completeness --------------------------------------------
    protocol_module: str = "src/repro/service/protocol.py"
    server_module: str = "src/repro/service/server.py"
    client_module: str = "src/repro/service/client.py"

    # -- resource-discipline ----------------------------------------------
    #: Resource-acquiring calls: bare names and ``module.attr`` pairs.
    resource_names: Tuple[str, ...] = ("open",)
    resource_attrs: Tuple[Tuple[str, str], ...] = (
        ("mmap", "mmap"),
        ("socket", "socket"),
        ("socket_module", "socket"),
        ("subprocess", "Popen"),
    )

    # -- ratchet ----------------------------------------------------------
    ratchet_file: str = "mypy-ratchet.toml"
    #: Packages/modules the ratchet file must cover (acceptance floor).
    ratchet_required: Tuple[str, ...] = (
        "src/repro/engine",
        "src/repro/core/kernels",
        "src/repro/session.py",
        "src/repro/service/protocol.py",
        "src/repro/store",
    )

    #: Extra per-rule path excludes, e.g. {"all-sync": ["src/legacy"]}.
    rule_excludes: Dict[str, List[str]] = field(default_factory=dict)


def _as_tuple(value: object, default: Tuple[str, ...]) -> Tuple[str, ...]:
    if isinstance(value, list):
        return tuple(str(item) for item in value)
    return default


def load_config(root: str, pyproject: Optional[str] = None) -> CheckConfig:
    """The config for ``root``, honouring its ``[tool.reprocheck]`` table."""
    defaults = CheckConfig(root=root)
    path = pyproject or os.path.join(root, "pyproject.toml")
    try:
        with open(path, "rb") as fh:
            table = tomllib.load(fh).get("tool", {}).get("reprocheck", {})
    except OSError:
        return defaults
    pairs = table.get("resource_attrs")
    resource_attrs = (
        tuple((str(a), str(b)) for a, b in pairs)
        if isinstance(pairs, list)
        else defaults.resource_attrs
    )
    excludes = table.get("rule_excludes")
    return CheckConfig(
        root=root,
        numpy_unguarded_allowed=_as_tuple(
            table.get("numpy_unguarded_allowed"), defaults.numpy_unguarded_allowed
        ),
        numpy_guarded_allowed=_as_tuple(
            table.get("numpy_guarded_allowed"), defaults.numpy_guarded_allowed
        ),
        spec_whitelist=_as_tuple(table.get("spec_whitelist"), defaults.spec_whitelist),
        worker_entry_points=_as_tuple(
            table.get("worker_entry_points"), defaults.worker_entry_points
        ),
        boundary_hooks=_as_tuple(table.get("boundary_hooks"), defaults.boundary_hooks),
        boundary_safe_self_attrs=_as_tuple(
            table.get("boundary_safe_self_attrs"), defaults.boundary_safe_self_attrs
        ),
        protocol_module=str(table.get("protocol_module", defaults.protocol_module)),
        server_module=str(table.get("server_module", defaults.server_module)),
        client_module=str(table.get("client_module", defaults.client_module)),
        resource_names=_as_tuple(table.get("resource_names"), defaults.resource_names),
        resource_attrs=resource_attrs,
        ratchet_file=str(table.get("ratchet_file", defaults.ratchet_file)),
        ratchet_required=_as_tuple(
            table.get("ratchet_required"), defaults.ratchet_required
        ),
        rule_excludes=dict(excludes) if isinstance(excludes, dict) else {},
    )
