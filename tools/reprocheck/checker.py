"""The checker driver: walk files, run rules, apply suppressions.

Per-file rules run on each python file under the requested paths;
project rules (currently ``protocol-completeness``) run once per
invocation against the configured repo root.  File findings are
filtered through the file's ``# repro-check:`` suppression tags
(:mod:`reprocheck.findings`); project findings are not suppressible —
cross-module drift is fixed, not waived.
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Iterable, Iterator, List, Optional, Sequence, Set

from reprocheck.config import CheckConfig, load_config
from reprocheck.findings import Finding, apply_suppressions, parse_suppressions
from reprocheck.rules import FILE_RULES, PROJECT_RULES

_SKIP_DIRS = {
    ".git",
    "__pycache__",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    "node_modules",
    ".venv",
    "venv",
}


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _excluded(rule: str, relpath: str, config: CheckConfig) -> bool:
    return any(
        relpath == prefix or relpath.startswith(prefix.rstrip("/") + "/")
        for prefix in config.rule_excludes.get(rule, ())
    )


def check_file(
    path: str,
    relpath: str,
    config: CheckConfig,
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """All (unsuppressed) findings of the per-file rules for one file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "parse-error",
                relpath,
                exc.lineno or 1,
                f"file does not parse: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    tags, malformed = parse_suppressions(lines)
    findings: List[Finding] = [
        dataclasses.replace(item, path=relpath) for item in malformed
    ]
    for rule, run in FILE_RULES.items():
        if select is not None and rule not in select:
            continue
        if _excluded(rule, relpath, config):
            continue
        findings.extend(run(tree, lines, relpath, config))
    return apply_suppressions(findings, tags)


def check_paths(
    paths: Sequence[str],
    config: Optional[CheckConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the full rule catalogue over ``paths``.

    ``paths`` are files or directories, relative to (or inside) the
    config root.  Project rules run whenever their subject modules exist
    under the root, regardless of which paths were requested — drift is
    drift even when only one side of it was passed on the command line.
    """
    if config is None:
        config = load_config(".")
    chosen: Optional[Set[str]] = set(select) if select is not None else None
    root = os.path.abspath(config.root)

    findings: List[Finding] = []
    for path in iter_python_files([os.path.join(config.root, p) for p in paths]):
        relpath = os.path.relpath(os.path.abspath(path), root).replace(os.sep, "/")
        findings.extend(check_file(path, relpath, config, chosen))
    for rule, run in PROJECT_RULES.items():
        if chosen is not None and rule not in chosen:
            continue
        findings.extend(run(config))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def check_project(
    root: str, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Check a whole repo: its ``src`` tree plus the project rules."""
    config = load_config(root)
    src = "src" if os.path.isdir(os.path.join(root, "src")) else "."
    return check_paths([src], config, select)
