"""Command line interface: ``python -m reprocheck`` / ``reprocheck``.

Usage::

    reprocheck [paths...]             lint (default paths: src/repro)
    reprocheck --select rule1,rule2   run a subset of the catalogue
    reprocheck --list-rules           print the rule catalogue
    reprocheck --json                 machine-readable findings
    reprocheck ratchet [--require-mypy]
                                      check the mypy strict-typing ratchet

Exit status: 0 clean, 1 findings (or ratchet violation), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from reprocheck.checker import check_paths
from reprocheck.config import load_config
from reprocheck.ratchet import check_ratchet
from reprocheck.rules import ALL_RULES


def _lint_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="reprocheck",
        description="architectural invariant linter for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root the config and policy paths are relative to",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0

    select = None
    if args.select:
        select = {part.strip() for part in args.select.split(",") if part.strip()}
        unknown = select - set(ALL_RULES)
        if unknown:
            print(
                f"reprocheck: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    config = load_config(args.root)
    findings = check_paths(args.paths, config, select)

    if args.json:
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
    if not args.quiet and not args.json:
        noun = "finding" if len(findings) == 1 else "findings"
        scope = ", ".join(args.paths)
        print(f"reprocheck: {len(findings)} {noun} in {scope}")
    return 1 if findings else 0


def _ratchet_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="reprocheck ratchet",
        description="check the mypy strict-typing ratchet",
    )
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument(
        "--require-mypy",
        action="store_true",
        help="fail (instead of skipping) when mypy is not installed",
    )
    parser.add_argument(
        "--no-mypy",
        action="store_true",
        help="only check coverage/floor/monotonicity, never invoke mypy",
    )
    args = parser.parse_args(argv)
    code, messages = check_ratchet(
        os.path.abspath(args.root),
        require_mypy=args.require_mypy,
        run_mypy=not args.no_mypy,
    )
    stream = sys.stderr if code else sys.stdout
    for message in messages:
        print(message, file=stream)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "ratchet":
        return _ratchet_main(argv[1:])
    return _lint_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
