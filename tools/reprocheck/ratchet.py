"""The mypy strict-typing ratchet: modules only ever move *toward* strict.

``mypy-ratchet.toml`` records, per module under ``src/repro``, whether
it must pass ``mypy --strict`` (``"strict"``) or is still waiting its
turn (``"baseline"``).  The ratchet check enforces four things:

1. **coverage** — every python module under ``src/repro`` has an entry
   (a new module must declare its typing status when it lands) and no
   entry points at a deleted file;
2. **floor** — everything under the required paths (``engine/``,
   ``core/kernels/``, ``session.py``, ``service/protocol.py``,
   ``store/``, …) is ``strict``;
3. **monotonicity** — a module recorded ``strict`` in ``git HEAD`` can
   never be demoted to ``baseline``; tightening is the only legal edit;
4. **reality** — when mypy is installed, ``mypy --strict`` actually
   passes on the strict set (per-module ``ignore_errors`` overrides in
   ``pyproject.toml`` keep followed baseline imports quiet).

mypy itself is an *optional* dependency of the check: on hosts without
it (this repo's pinned container, for one) steps 1–3 still run and the
static run is skipped with a notice.  CI passes ``--require-mypy`` so
the skip can never hide a regression where it matters.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tomllib
from typing import Dict, List, Optional, Tuple

from reprocheck.config import CheckConfig, load_config

SCHEMA = "repro-mypy-ratchet/1"
_STATUSES = ("strict", "baseline")


def load_ratchet(path: str) -> Tuple[Dict[str, str], List[str]]:
    """``(modules, errors)`` from a ratchet file (module -> status)."""
    try:
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
    except OSError as exc:
        return {}, [f"cannot read ratchet file {path!r}: {exc}"]
    except tomllib.TOMLDecodeError as exc:
        return {}, [f"ratchet file {path!r} is not valid TOML: {exc}"]
    errors: List[str] = []
    if data.get("schema") != SCHEMA:
        errors.append(
            f"ratchet file {path!r} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    modules = data.get("modules")
    if not isinstance(modules, dict):
        return {}, errors + [f"ratchet file {path!r} has no [modules] table"]
    result: Dict[str, str] = {}
    for module, status in modules.items():
        if status not in _STATUSES:
            errors.append(
                f"{module}: invalid status {status!r} (expected one of "
                f"{'/'.join(_STATUSES)})"
            )
            continue
        result[str(module)] = str(status)
    return result, errors


def _tree_modules(root: str) -> List[str]:
    """Every python module under ``src/repro``, repo-relative."""
    modules: List[str] = []
    base = os.path.join(root, "src", "repro")
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                full = os.path.join(dirpath, filename)
                modules.append(os.path.relpath(full, root).replace(os.sep, "/"))
    return modules


def _head_ratchet(root: str, ratchet_file: str) -> Optional[Dict[str, str]]:
    """The committed ratchet at git HEAD, or ``None`` if unavailable."""
    try:
        proc = subprocess.run(
            ["git", "show", f"HEAD:{ratchet_file}"],
            cwd=root,
            capture_output=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None  # first commit of the ratchet, or not a git checkout
    try:
        data = tomllib.loads(proc.stdout.decode("utf-8"))
    except (UnicodeDecodeError, tomllib.TOMLDecodeError):
        return None
    modules = data.get("modules")
    if not isinstance(modules, dict):
        return None
    return {str(k): str(v) for k, v in modules.items()}


def _under(module: str, required: str) -> bool:
    prefix = required.rstrip("/")
    return module == prefix or module.startswith(prefix + "/")


def mypy_command() -> Optional[List[str]]:
    """How to invoke mypy on this host, or ``None`` if it is absent."""
    try:
        import mypy  # noqa: F401  (probing the optional checker)
    except ImportError:
        executable = shutil.which("mypy")
        return [executable] if executable else None
    return [sys.executable, "-m", "mypy"]


def check_ratchet(
    root: str = ".",
    *,
    config: Optional[CheckConfig] = None,
    require_mypy: bool = False,
    run_mypy: bool = True,
) -> Tuple[int, List[str]]:
    """Run the full ratchet check; returns ``(exit_code, messages)``."""
    if config is None:
        config = load_config(root)
    path = os.path.join(root, config.ratchet_file)
    modules, problems = load_ratchet(path)
    if problems and not modules:
        return 1, problems

    tree = _tree_modules(root)
    for module in tree:
        if module not in modules:
            problems.append(
                f"{module}: not covered by {config.ratchet_file} — every "
                "module under src/repro must declare strict or baseline"
            )
    for module in modules:
        if module not in tree:
            problems.append(
                f"{module}: listed in {config.ratchet_file} but the file "
                "does not exist — remove the stale entry"
            )

    for required in config.ratchet_required:
        for module in tree:
            if _under(module, required) and modules.get(module) == "baseline":
                problems.append(
                    f"{module}: must be strict ({required} is in the "
                    "ratchet's required-strict floor)"
                )

    head = _head_ratchet(root, config.ratchet_file)
    if head is not None:
        for module, status in sorted(head.items()):
            if status != "strict":
                continue
            if module in tree and modules.get(module) != "strict":
                problems.append(
                    f"{module}: was strict at HEAD and cannot be demoted — "
                    "the ratchet only turns one way"
                )

    if problems:
        return 1, problems

    strict = sorted(m for m, status in modules.items() if status == "strict")
    messages = [
        f"ratchet OK: {len(strict)}/{len(modules)} modules strict, "
        "coverage complete, floor satisfied, monotone vs HEAD"
    ]
    if not run_mypy:
        return 0, messages
    command = mypy_command()
    if command is None:
        if require_mypy:
            return 1, messages + [
                "mypy is required (--require-mypy) but not installed"
            ]
        return 0, messages + [
            "mypy not installed — static strict run skipped (CI runs it "
            "with --require-mypy)"
        ]
    proc = subprocess.run(
        command + ["--strict", *strict], cwd=root, capture_output=True, text=True
    )
    output = (proc.stdout + proc.stderr).strip()
    if proc.returncode != 0:
        return 1, messages + ["mypy --strict failed:", output]
    return 0, messages + [f"mypy --strict OK on {len(strict)} modules"]
