"""repro-check: the architectural invariant linter of this repository.

The system's correctness rests on cross-module invariants that no
general-purpose linter knows about: importing :mod:`repro` must never
require numpy, only picklable spec types may cross process boundaries,
every wire-protocol request kind needs a server handler *and* a client
method, and so on.  ``reprocheck`` makes those invariants machine-checked
as named AST rules (:mod:`reprocheck.rules`) with per-line suppression
tags, plus a mypy strict-typing ratchet (:mod:`reprocheck.ratchet`) that
only ever moves modules *toward* strict.

Run it as ``python -m reprocheck src/repro`` (or the ``reprocheck``
console script); ``python -m reprocheck ratchet`` checks the typing
ratchet.  Configuration lives in ``[tool.reprocheck]`` of
``pyproject.toml``; the rule catalogue and the suppression-tag grammar
are documented in ``CONTRIBUTING.md``.
"""

from reprocheck.checker import check_paths, check_project
from reprocheck.config import CheckConfig, load_config
from reprocheck.findings import Finding, parse_suppressions

__version__ = "1.0.0"

__all__ = [
    "CheckConfig",
    "Finding",
    "check_paths",
    "check_project",
    "load_config",
    "parse_suppressions",
]
