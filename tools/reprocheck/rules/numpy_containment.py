"""Rule ``numpy-containment``: importing :mod:`repro` must never need numpy.

The numpy fast path is an *optional* kernel backend.  The invariant that
keeps it optional is purely about import topology:

* an **unguarded module-level** ``import numpy`` is allowed only in the
  numpy kernel module itself (``core/kernels/numpy_kernel.py``), which
  is in turn only imported behind the availability probe;
* a **guarded** (``try``/``except ImportError``) or **lazy**
  (inside a function) import is allowed only in the per-file whitelist
  (the kernel registry's probe, the LZ pipeline's optional fast path).

Everything else that touches numpy at import time is a containment
breach: it would make ``import repro`` fail on no-numpy hosts.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from reprocheck.config import CheckConfig
from reprocheck.findings import Finding

RULE = "numpy-containment"

_GUARD_EXCEPTIONS = {"ImportError", "ModuleNotFoundError", "Exception"}


def _is_numpy(node: ast.AST) -> bool:
    if isinstance(node, ast.Import):
        return any(alias.name.split(".")[0] == "numpy" for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        return node.level == 0 and (node.module or "").split(".")[0] == "numpy"
    return False


def _guards_import_error(node: ast.Try) -> bool:
    for handler in node.handlers:
        if handler.type is None:
            return True
        names: Sequence[ast.expr]
        if isinstance(handler.type, ast.Tuple):
            names = handler.type.elts
        else:
            names = [handler.type]
        for name in names:
            if isinstance(name, ast.Name) and name.id in _GUARD_EXCEPTIONS:
                return True
    return False


def check_file(
    tree: ast.Module, lines: Sequence[str], relpath: str, config: CheckConfig
) -> List[Finding]:
    unguarded_ok = relpath in config.numpy_unguarded_allowed
    guarded_ok = unguarded_ok or relpath in config.numpy_guarded_allowed

    findings: List[Finding] = []

    def visit(node: ast.AST, lazy: bool, guarded: bool) -> None:
        if _is_numpy(node):
            if lazy or guarded:
                if not guarded_ok:
                    findings.append(
                        Finding(
                            RULE,
                            relpath,
                            node.lineno,  # type: ignore[attr-defined]
                            "guarded/lazy numpy import outside the whitelist "
                            "(numpy_guarded_allowed); route numpy access "
                            "through repro.core.kernels",
                        )
                    )
            elif not unguarded_ok:
                findings.append(
                    Finding(
                        RULE,
                        relpath,
                        node.lineno,  # type: ignore[attr-defined]
                        "unguarded module-level numpy import — only the numpy "
                        "kernel module may import numpy at import time",
                    )
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lazy = True
        if isinstance(node, ast.Try) and _guards_import_error(node):
            # Only the try-body is shielded by the ImportError handler.
            for stmt in node.body:
                visit(stmt, lazy, True)
            for stmt in (*node.handlers, *node.orelse, *node.finalbody):
                visit(stmt, lazy, guarded)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, lazy, guarded)

    visit(tree, False, False)
    return findings
