"""Rule ``resource-discipline``: every acquired handle has an owner.

The store memory-maps ``.prep`` and ``repro-slpb`` files, the service
layer opens unix sockets, workers append to fault-injection logs — a
leaked handle here is not a style problem, it is a held ``mmap`` keeping
a multi-GB file pinned or a stale socket blocking the next daemon.

Acquisition sites (``open``, ``mmap.mmap``, ``socket.socket``,
``subprocess.Popen`` by default) must show one of the ownership shapes
the codebase already uses:

* a ``with`` item (directly, or wrapped e.g. ``closing(...)``);
* assignment to ``self.<attr>`` in a class that defines ``close``,
  ``__exit__`` or ``__del__`` (the instance owns it);
* assignment to a local that the same function later ``.close()``s
  (the ``finally: probe.close()`` shape), uses as a ``with`` context,
  hands to ``self.<attr>`` of an owning class, registers for cleanup
  (``atexit.register`` / ``weakref.finalize`` / ``ExitStack``), or
  returns (ownership transfers to the caller);
* a bare ``return <acquisition>`` (a factory — the caller owns it).

Anything else is a leak-by-construction and is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence

from reprocheck.config import CheckConfig
from reprocheck.findings import Finding

RULE = "resource-discipline"

_OWNER_METHODS = {"close", "__exit__", "__del__"}
_REGISTRARS = {"register", "finalize", "enter_context", "callback", "push"}


def _describe(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute) and isinstance(call.func.value, ast.Name):
        return f"{call.func.value.id}.{call.func.attr}"
    return "resource"


def _is_resource(call: ast.Call, config: CheckConfig) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in config.resource_names
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr) in config.resource_attrs
    return False


def _class_owns(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name in _OWNER_METHODS
        for item in cls.body
    )


def _self_attr_target(target: ast.expr) -> bool:
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


def _name_released(scope: ast.AST, name: str, after: int) -> bool:
    """Does ``scope`` ever transfer or release the handle bound to ``name``?"""
    for node in ast.walk(scope):
        if getattr(node, "lineno", after) < after:
            continue
        # n.close()
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "close"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
        # with n: / with closing(n):
        if isinstance(node, ast.withitem):
            for sub in ast.walk(node.context_expr):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        # self.attr = n  (ownership handed to the instance)
        if isinstance(node, ast.Assign) and any(
            _self_attr_target(t) for t in node.targets
        ):
            if isinstance(node.value, ast.Name) and node.value.id == name:
                return True
        # return n  (ownership handed to the caller)
        if (
            isinstance(node, ast.Return)
            and isinstance(node.value, ast.Name)
            and node.value.id == name
        ):
            return True
        # atexit.register(..., n) / stack.enter_context(n) / finalize(o, n.close)
        if isinstance(node, ast.Call):
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name) else ""
            )
            if attr in _REGISTRARS:
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
    return False


def check_file(
    tree: ast.Module, lines: Sequence[str], relpath: str, config: CheckConfig
) -> List[Finding]:
    parents: Dict[ast.AST, ast.AST] = {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }

    def ancestor(node: ast.AST, *kinds: type) -> Optional[ast.AST]:
        cursor = parents.get(node)
        while cursor is not None:
            if isinstance(cursor, kinds):
                return cursor
            cursor = parents.get(cursor)
        return None

    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _is_resource(node, config)):
            continue
        if ancestor(node, ast.withitem) is not None:
            continue
        statement = ancestor(node, ast.stmt)
        if statement is None:
            continue
        if isinstance(statement, ast.Return):
            continue  # factory: the caller owns the handle
        ok = False
        if isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = (
                statement.targets
                if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            for target in targets:
                if _self_attr_target(target):
                    cls = ancestor(node, ast.ClassDef)
                    if cls is not None and _class_owns(cls):
                        ok = True
                elif isinstance(target, ast.Name):
                    scope = ancestor(
                        node, ast.FunctionDef, ast.AsyncFunctionDef
                    ) or tree
                    if _name_released(scope, target.id, statement.lineno):
                        ok = True
        if not ok:
            findings.append(
                Finding(
                    RULE,
                    relpath,
                    node.lineno,
                    f"'{_describe(node)}' handle is neither context-managed "
                    "nor owned (no with-block, no close(), no owning "
                    "self-attribute, no cleanup registration)",
                )
            )
    return findings
