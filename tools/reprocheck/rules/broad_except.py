"""Rule ``broad-except``: a blanket ``except`` must say why.

``except Exception`` and bare ``except:`` swallow programming errors
(AttributeError, KeyError, …) along with the failure they meant to
absorb, which in this codebase has a specific cost: a silently-eaten
exception inside a worker or the daemon turns into a hung pool or a
wrong answer rather than a traceback.  The legitimate uses — wire/worker
fault *barriers* that convert any failure into an error frame, and
best-effort cache probes — are kept, but must be tagged::

    except Exception:  # repro-check: broad-except — worker fault barrier

so every blanket handler carries its justification in-line.
``except BaseException`` is deliberately out of scope: it is the
re-raise barrier idiom (KeyboardInterrupt handling) and always re-raises.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from reprocheck.config import CheckConfig
from reprocheck.findings import Finding

RULE = "broad-except"


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types: Sequence[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        types = handler.type.elts
    else:
        types = [handler.type]
    return any(isinstance(t, ast.Name) and t.id == "Exception" for t in types)


def check_file(
    tree: ast.Module, lines: Sequence[str], relpath: str, config: CheckConfig
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and _is_broad(node):
            kind = "bare 'except:'" if node.type is None else "'except Exception'"
            findings.append(
                Finding(
                    RULE,
                    relpath,
                    node.lineno,
                    f"{kind} without justification — narrow the exception "
                    "type, or tag the line: "
                    "'# repro-check: broad-except — <why>'",
                )
            )
    return findings
