"""Rule ``protocol-completeness``: no drift across the wire protocol.

The service protocol is defined in three places that must agree:

* ``service/protocol.py`` declares the request kinds in
  ``REQUEST_KINDS`` (op name → client method name);
* ``service/server.py`` dispatches each op in ``_dispatch``
  (``op == "..."`` comparisons);
* ``service/client.py`` exposes each op as the declared typed method,
  implemented via ``self.request("<op>", ...)``.

A kind present in one place and missing in another is exactly how
protocol drift ships: a client method the daemon rejects, or a handler
no client can reach.  This is a *project* rule — it reads all three
modules and fails on any asymmetry, including an empty/missing
``REQUEST_KINDS`` declaration.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Set, Tuple

from reprocheck.config import CheckConfig
from reprocheck.findings import Finding

RULE = "protocol-completeness"


def _parse(root: str, relpath: str) -> Optional[ast.Module]:
    path = os.path.join(root, relpath)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return ast.parse(fh.read(), filename=path)
    except (OSError, SyntaxError):
        return None


def _declared_kinds(tree: ast.Module) -> Tuple[Optional[Dict[str, str]], int]:
    """The ``REQUEST_KINDS`` mapping (op -> client method) and its line."""
    for node in tree.body:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        named = any(
            isinstance(t, ast.Name) and t.id == "REQUEST_KINDS" for t in targets
        )
        if not named or not isinstance(value, ast.Dict):
            continue
        kinds: Dict[str, str] = {}
        for key, val in zip(value.keys, value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(val, ast.Constant)
                and isinstance(val.value, str)
            ):
                kinds[key.value] = val.value
        return kinds, node.lineno
    return None, 1


def _server_ops(tree: ast.Module) -> Dict[str, int]:
    """Ops handled by the server: ``op == "<kind>"`` comparisons."""
    ops: Dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        if not any(isinstance(o, ast.Name) and o.id == "op" for o in operands):
            continue
        if not all(isinstance(o, (ast.Eq, ast.In)) for o in node.ops):
            continue
        for operand in operands:
            literals = (
                operand.elts
                if isinstance(operand, (ast.Tuple, ast.List, ast.Set))
                else [operand]
            )
            for literal in literals:
                if isinstance(literal, ast.Constant) and isinstance(
                    literal.value, str
                ):
                    ops.setdefault(literal.value, node.lineno)
    return ops


def _client_surface(
    tree: ast.Module,
) -> Tuple[Dict[str, int], Dict[str, Set[str]]]:
    """``(methods, requests)``: method name -> line, op -> calling methods."""
    methods: Dict[str, int] = {}
    requests: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            methods[item.name] = item.lineno
            for call in ast.walk(item):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "request"
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"
                    and call.args
                    and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    requests.setdefault(call.args[0].value, set()).add(item.name)
    return methods, requests


def check_project(config: CheckConfig) -> List[Finding]:
    protocol = _parse(config.root, config.protocol_module)
    server = _parse(config.root, config.server_module)
    client = _parse(config.root, config.client_module)
    if protocol is None or server is None or client is None:
        # Nothing to cross-check: this tree does not carry the service
        # layer (fixture trees in tests, partial checkouts).
        return []

    findings: List[Finding] = []
    kinds, kinds_line = _declared_kinds(protocol)
    if kinds is None:
        return [
            Finding(
                RULE,
                config.protocol_module,
                kinds_line,
                "protocol module declares no literal REQUEST_KINDS mapping "
                "(op name -> client method name)",
            )
        ]

    handled = _server_ops(server)
    methods, requests = _client_surface(client)

    for op, method in sorted(kinds.items()):
        if op not in handled:
            findings.append(
                Finding(
                    RULE,
                    config.server_module,
                    1,
                    f"request kind '{op}' is declared in REQUEST_KINDS but "
                    "the server dispatch never handles it",
                )
            )
        if method not in methods:
            findings.append(
                Finding(
                    RULE,
                    config.client_module,
                    1,
                    f"request kind '{op}' is declared in REQUEST_KINDS but "
                    f"the client has no '{method}' method",
                )
            )
        elif method not in requests.get(op, set()):
            findings.append(
                Finding(
                    RULE,
                    config.client_module,
                    methods[method],
                    f"client method '{method}' never issues "
                    f"self.request('{op}') for its declared kind",
                )
            )
    for op, line in sorted(handled.items()):
        if op not in kinds:
            findings.append(
                Finding(
                    RULE,
                    config.server_module,
                    line,
                    f"server handles op '{op}' that REQUEST_KINDS never "
                    "declares",
                )
            )
    for op, callers in sorted(requests.items()):
        if op not in kinds:
            findings.append(
                Finding(
                    RULE,
                    config.client_module,
                    methods.get(sorted(callers)[0], 1),
                    f"client issues self.request('{op}') for an undeclared "
                    "request kind",
                )
            )
    return findings
