"""Rule ``process-boundary``: only spec types cross process boundaries.

Worker processes are hydrated from scratch (spawn-safe), so everything
that crosses the parent/worker boundary must be a small picklable value:
the frozen spec dataclasses (``EngineConfig``, ``SpannerSpec``,
``TaskSpec``), shard descriptions, and builtins.  Shipping a live object
— an ``Engine``, an open store, a compiled automaton — either fails to
pickle or (worse) silently pickles a snapshot whose caches and file
handles are meaningless in the child.

Two surfaces are audited:

* the **worker entry points** (``worker_main``/``service_worker_main``):
  every parameter must be a transport pipe (``worker_id``/``task_conn``/
  ``result_conn``) or carry an annotation built solely from whitelisted
  spec types, builtins and typing containers;
* the **fleet hooks** (``_worker_args``/``_shard_message``): every
  returned expression must be built from hook parameters (already vetted
  at the pool surface), whitelisted ``self.<attr>`` spec fields,
  constants and tuple/list packing thereof.
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set

from reprocheck.config import CheckConfig
from reprocheck.findings import Finding

RULE = "process-boundary"

#: Parameters that are the transport itself, not boundary cargo.
_TRANSPORT_PARAMS = {"worker_id", "task_conn", "result_conn"}

#: Annotation atoms that are always boundary-safe.
_SAFE_ANNOTATION_NAMES = {
    "int", "str", "float", "bool", "bytes", "None", "object",
    "Sequence", "Tuple", "tuple", "List", "list", "Dict", "dict",
    "Mapping", "Iterable", "Optional", "Union", "FrozenSet", "frozenset",
    "Set", "set", "Connection",
}


def _annotation_violations(annotation: ast.expr, allowed: Set[str]) -> List[str]:
    bad: List[str] = []
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id not in allowed:
            bad.append(node.id)
        elif isinstance(node, ast.Attribute):
            if node.attr not in allowed:
                bad.append(node.attr)
    return bad


def _check_entry_point(
    func: ast.FunctionDef, relpath: str, config: CheckConfig
) -> List[Finding]:
    allowed = _SAFE_ANNOTATION_NAMES | set(config.spec_whitelist)
    findings: List[Finding] = []
    params = list(func.args.posonlyargs) + list(func.args.args) + list(
        func.args.kwonlyargs
    )
    for param in params:
        if param.annotation is None:
            if param.arg not in _TRANSPORT_PARAMS:
                findings.append(
                    Finding(
                        RULE,
                        relpath,
                        param.lineno,
                        f"worker entry point '{func.name}' parameter "
                        f"'{param.arg}' has no spec-type annotation — "
                        "boundary cargo must be declared as a whitelisted "
                        "spec type",
                    )
                )
            continue
        for name in _annotation_violations(param.annotation, allowed):
            findings.append(
                Finding(
                    RULE,
                    relpath,
                    param.lineno,
                    f"worker entry point '{func.name}' parameter "
                    f"'{param.arg}' is typed with non-spec type '{name}' — "
                    "only spec types "
                    f"({', '.join(config.spec_whitelist)}) and builtins may "
                    "cross the process boundary",
                )
            )
    return findings


def _check_hook(
    func: ast.FunctionDef, relpath: str, config: CheckConfig
) -> List[Finding]:
    param_names = {
        arg.arg
        for arg in (
            list(func.args.posonlyargs)
            + list(func.args.args)
            + list(func.args.kwonlyargs)
        )
    }
    param_names.discard("self")

    def safe(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in param_names
        if isinstance(expr, ast.Attribute):
            return (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in config.boundary_safe_self_attrs
            )
        if isinstance(expr, (ast.Tuple, ast.List)):
            return all(safe(element) for element in expr.elts)
        if isinstance(expr, ast.Starred):
            return safe(expr.value)
        if isinstance(expr, ast.Call):
            packer = isinstance(expr.func, ast.Name) and expr.func.id in (
                "tuple",
                "list",
            )
            return packer and not expr.keywords and all(safe(a) for a in expr.args)
        return False

    findings: List[Finding] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if not safe(node.value):
                findings.append(
                    Finding(
                        RULE,
                        relpath,
                        node.lineno,
                        f"boundary hook '{func.name}' returns "
                        f"'{ast.unparse(node.value)}' — only hook "
                        "parameters, whitelisted self-attributes "
                        f"({', '.join(config.boundary_safe_self_attrs)}), "
                        "constants and tuple/list packing of those may be "
                        "shipped to workers",
                    )
                )
    return findings


def check_file(
    tree: ast.Module, lines: Sequence[str], relpath: str, config: CheckConfig
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name in config.worker_entry_points:
            findings.extend(_check_entry_point(node, relpath, config))
        elif node.name in config.boundary_hooks:
            findings.extend(_check_hook(node, relpath, config))
    return findings
