"""Rule ``all-sync``: a package ``__init__`` and its ``__all__`` agree.

Package ``__init__`` modules are the public surface of the system, and
``__all__`` is their contract: ``from repro import *``, the docs, and
the re-export chain all read it.  Two kinds of drift are caught:

* a name listed in ``__all__`` with no module-level binding (stale entry
  or typo — would raise at ``import *`` time);
* a public module-level binding that is clearly a re-export (a def, a
  class, an assignment, or an import from inside the same package) but
  is missing from ``__all__`` — an accidentally-unpublished surface.

Imports from the stdlib or third-party modules are not required in
``__all__`` (they are implementation plumbing, not surface), and
``if TYPE_CHECKING:`` bindings satisfy ``__all__`` entries without
being required in them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from reprocheck.config import CheckConfig
from reprocheck.findings import Finding

RULE = "all-sync"


def _top_package(relpath: str) -> Optional[str]:
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] in ("src", "tools", "lib"):
        parts = parts[1:]
    return parts[0] if len(parts) > 1 else None


def _is_type_checking(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


def _literal_names(value: ast.expr) -> Optional[List[Tuple[str, int]]]:
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    names: List[Tuple[str, int]] = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append((element.value, element.lineno))
        else:
            return None
    return names


def check_file(
    tree: ast.Module, lines: Sequence[str], relpath: str, config: CheckConfig
) -> List[Finding]:
    if not relpath.replace("\\", "/").endswith("__init__.py"):
        return []
    top = _top_package(relpath)

    defined: Set[str] = set()
    #: name -> first-binding line, for names that *belong* in __all__.
    exportable: Dict[str, int] = {}
    declared: Optional[List[Tuple[str, int]]] = None
    declared_line = 1

    def bind(name: str, line: int, public_surface: bool) -> None:
        defined.add(name)
        if public_surface and not name.startswith("_"):
            exportable.setdefault(name, line)

    def scan(stmts: Sequence[ast.stmt], surface: bool) -> None:
        nonlocal declared, declared_line
        for node in stmts:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    local = alias.name.split(".")[0] == top
                    bind(bound, node.lineno, surface and local)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "__future__":
                    continue
                local = node.level > 0 or module.split(".")[0] == top
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    bind(bound, node.lineno, surface and local)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bind(node.name, node.lineno, surface)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id == "__all__":
                        declared = _literal_names(node.value)
                        declared_line = node.lineno
                    elif not (target.id.startswith("__") and target.id.endswith("__")):
                        bind(target.id, node.lineno, surface)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bind(node.target.id, node.lineno, surface)
            elif isinstance(node, ast.Try):
                scan(node.body, surface)
                for handler in node.handlers:
                    scan(handler.body, surface)
                scan(node.orelse, surface)
                scan(node.finalbody, surface)
            elif isinstance(node, ast.If):
                # TYPE_CHECKING blocks define names without surfacing them.
                inner = surface and not _is_type_checking(node.test)
                scan(node.body, inner)
                scan(node.orelse, surface)

    scan(tree.body, True)

    findings: List[Finding] = []
    if declared is None:
        findings.append(
            Finding(
                RULE,
                relpath,
                declared_line,
                "package __init__ has no literal __all__ — declare the "
                "public surface explicitly",
            )
        )
        return findings

    seen: Set[str] = set()
    for name, line in declared:
        if name in seen:
            findings.append(
                Finding(RULE, relpath, line, f"duplicate __all__ entry '{name}'")
            )
        seen.add(name)
        if name not in defined:
            findings.append(
                Finding(
                    RULE,
                    relpath,
                    line,
                    f"__all__ lists '{name}' but the module never binds it",
                )
            )
    for name, line in sorted(exportable.items(), key=lambda item: item[1]):
        if name not in seen:
            findings.append(
                Finding(
                    RULE,
                    relpath,
                    line,
                    f"public binding '{name}' is missing from __all__ — "
                    "export it or rename it with a leading underscore",
                )
            )
    return findings
