"""The rule catalogue.

Two shapes of rule:

* **per-file** rules see one parsed module at a time —
  ``check_file(tree, lines, relpath, config) -> List[Finding]``;
* **project** rules see the whole tree (they cross-check several
  modules) — ``check_project(config) -> List[Finding]``.

Rule names are the stable identifiers used in findings, suppression
tags and ``--select``; they are documented in ``CONTRIBUTING.md``.
"""

from __future__ import annotations

from reprocheck.rules import (
    all_sync,
    broad_except,
    numpy_containment,
    process_boundary,
    protocol_completeness,
    resource_discipline,
)

#: rule-name -> per-file checker
FILE_RULES = {
    "numpy-containment": numpy_containment.check_file,
    "process-boundary": process_boundary.check_file,
    "broad-except": broad_except.check_file,
    "all-sync": all_sync.check_file,
    "resource-discipline": resource_discipline.check_file,
}

#: rule-name -> project-level checker
PROJECT_RULES = {
    "protocol-completeness": protocol_completeness.check_project,
}

#: Every rule name, in catalogue order.
ALL_RULES = tuple(FILE_RULES) + tuple(PROJECT_RULES)

__all__ = [
    "ALL_RULES",
    "FILE_RULES",
    "PROJECT_RULES",
    "all_sync",
    "broad_except",
    "numpy_containment",
    "process_boundary",
    "protocol_completeness",
    "resource_discipline",
]
